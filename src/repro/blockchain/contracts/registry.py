"""Participant registry, protocol parameters, and cohort epochs.

The off-chain setup stage of the paper has the owners agree on FL parameters,
secure-aggregation parameters, and contribution-evaluation parameters (the
permutation seed ``e``, the number of groups ``m``, the utility function) and
submit them to the blockchain.  This contract pins those parameters on chain
and records every participant's Diffie–Hellman public key, after which the
training and contribution contracts treat the registry as read-only ground
truth.

Beyond the genesis cohort, the registry models **dynamic membership** as
cohort *epochs*: a `request_join` / `request_leave` transaction schedules a
membership change that takes effect at a future round boundary, and
``active_cohort(round)`` is a pure function of chain state — any miner
re-executing the chain derives the same per-round cohort, which is what the
training and contribution contracts group and settle against.

Membership state layout:

* ``participant/{owner}``   — public key, role, registration height
  (unchanged from the genesis path, so chains without membership events are
  byte-identical to the fixed-cohort protocol).
* ``membership/{owner}``    — a list of half-open round intervals
  ``[{"from": r0, "until": r1-or-None}, ...]``; written only by
  `request_join` / `request_leave`.  An owner with *no* membership record is
  a genesis member, active for every round.
* ``membership_index``      — sorted owner ids that have membership records;
  lets contracts and auditors detect dynamic-membership chains in O(1).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blockchain.contracts.base import Contract, ContractContext, contract_method
from repro.exceptions import ContractStateError
from repro.utils.serialization import canonical_dumps

CONTRACT_NAME = "registry"

_REQUIRED_PARAM_KEYS = (
    "n_owners",
    "n_groups",
    "n_rounds",
    "permutation_seed",
    "precision_bits",
    "field_bits",
)

# The training contract's namespace, read (never written) to reject membership
# changes scheduled at or before an already-finalized round.
_TRAINING_CONTRACT = "fl_training"


class ParticipantRegistryContract(Contract):
    """On-chain registry of participants, agreed parameters, and cohort epochs."""

    name = CONTRACT_NAME

    @contract_method
    def set_protocol_params(self, ctx: ContractContext, params: dict[str, Any]) -> dict[str, Any]:
        """Pin the agreed protocol parameters.

        The first successful call wins; later calls must carry byte-identical
        parameters (idempotent confirmation) or they fail — disagreement on
        setup parameters is a protocol error, not something to silently merge.
        """
        missing = [key for key in _REQUIRED_PARAM_KEYS if key not in params]
        if missing:
            raise ContractStateError(f"protocol params missing required keys: {missing}")
        existing = ctx.get("protocol_params")
        if existing is not None:
            if canonical_dumps(existing) != canonical_dumps(params):
                raise ContractStateError("protocol parameters are already pinned and differ")
            return {"status": "already-set"}
        ctx.set("protocol_params", params)
        ctx.emit("ProtocolParamsSet", by=ctx.sender, n_owners=params["n_owners"], n_groups=params["n_groups"])
        return {"status": "set"}

    @contract_method
    def register_participant(self, ctx: ContractContext, public_key: int, role: str = "owner") -> dict[str, Any]:
        """Register the sender with its Diffie–Hellman public key.

        Re-registration with the same key is idempotent; changing the key after
        registration is rejected (it would break already-derived pairwise masks).
        Only ``role == "owner"`` registrations consume one of the ``n_owners``
        genesis slots — auxiliary roles (auditors, observers) register freely.
        """
        record_key = f"participant/{ctx.sender}"
        existing = ctx.get(record_key)
        if existing is not None:
            if int(existing["public_key"]) != int(public_key):
                raise ContractStateError(f"participant {ctx.sender} already registered with a different key")
            return {"status": "already-registered"}
        params = ctx.get("protocol_params")
        if params is not None and role == "owner":
            if _genesis_owner_count(ctx.get) >= int(params["n_owners"]):
                raise ContractStateError("registry is full: all owner slots are taken")
        self._store_participant(ctx, public_key, role)
        return {"status": "registered"}

    def _store_participant(self, ctx: ContractContext, public_key: int, role: str) -> None:
        """Write the sender's participant record, index entry, and event."""
        if public_key <= 1:
            raise ContractStateError("public key must be a group element greater than 1")
        ctx.set(
            f"participant/{ctx.sender}",
            {"public_key": int(public_key), "role": role, "registered_at": ctx.block_height},
        )
        ctx.set("participant_index", sorted(ctx.get("participant_index", []) + [ctx.sender]))
        ctx.emit("ParticipantRegistered", owner=ctx.sender, role=role)

    # ------------------------------------------------------------------
    # Dynamic membership: cohort epochs
    # ------------------------------------------------------------------

    def _validate_effective_round(self, ctx: ContractContext, effective_round: int) -> int:
        """Common checks for a membership change scheduled at ``effective_round``."""
        params = ctx.get("protocol_params")
        if params is None:
            raise ContractStateError("protocol parameters must be pinned before membership changes")
        effective_round = int(effective_round)
        n_rounds = int(params["n_rounds"])
        if not 1 <= effective_round < n_rounds:
            raise ContractStateError(
                f"membership changes must take effect at a round boundary in [1, {n_rounds - 1}]; "
                f"got {effective_round} (the genesis cohort covers round 0)"
            )
        latest = ctx.read_external(_TRAINING_CONTRACT, "latest_round", default=-1)
        if effective_round <= int(latest):
            raise ContractStateError(
                f"round {effective_round} is already finalized (latest finalized round is {latest}); "
                "membership can only change at a future round boundary"
            )
        return effective_round

    def _record_membership(self, ctx: ContractContext, owner_id: str, intervals: list[dict[str, Any]]) -> None:
        ctx.set(f"membership/{owner_id}", intervals)
        index = ctx.get("membership_index", [])
        if owner_id not in index:
            ctx.set("membership_index", sorted(index + [owner_id]))

    @contract_method
    def request_join(
        self,
        ctx: ContractContext,
        public_key: int,
        effective_round: int,
        role: str = "owner",
    ) -> dict[str, Any]:
        """Schedule the sender to join the training cohort at a round boundary.

        A brand-new participant registers its Diffie–Hellman public key in the
        same transaction (so every peer can derive pairwise masks against it
        before its first active round); a previously departed owner re-joins
        with its original key.  The join takes effect at ``effective_round`` —
        necessarily in the future, enforced against the training contract's
        latest finalized round — so the cohort of any in-flight round is never
        mutated mid-round.

        Joins are not bounded by the genesis ``n_owners`` slot count: the whole
        point of dynamic membership is growing the cohort past the setup-time
        agreement, and the epoch record keeps the change auditable.
        """
        if role != "owner":
            raise ContractStateError("only owner-role participants can join the training cohort")
        effective_round = self._validate_effective_round(ctx, effective_round)
        record_key = f"participant/{ctx.sender}"
        existing = ctx.get(record_key)
        if existing is None:
            self._store_participant(ctx, public_key, role)
            self._record_membership(ctx, ctx.sender, [{"from": effective_round, "until": None}])
        else:
            if existing.get("role", "owner") != "owner":
                raise ContractStateError(
                    f"{ctx.sender} is registered with role {existing.get('role')!r} "
                    "and cannot join the training cohort"
                )
            if int(existing["public_key"]) != int(public_key):
                raise ContractStateError(f"participant {ctx.sender} already registered with a different key")
            intervals = ctx.get(f"membership/{ctx.sender}")
            if intervals is None or intervals[-1]["until"] is None:
                raise ContractStateError(f"{ctx.sender} is already an active cohort member")
            last = intervals[-1]
            if effective_round < int(last["until"]):
                raise ContractStateError(
                    f"{ctx.sender} cannot re-join at round {effective_round}: "
                    f"its membership only ends at round {last['until']}"
                )
            if effective_round == int(last["until"]):
                # Re-joining exactly at the scheduled leave boundary cancels
                # the leave: coalesce instead of recording two contiguous
                # intervals, which would split one cohort into two
                # identical-cohort epochs and skew per-epoch settlement.
                merged = intervals[:-1] + [{"from": last["from"], "until": None}]
            else:
                merged = intervals + [{"from": effective_round, "until": None}]
            self._record_membership(ctx, ctx.sender, merged)
        ctx.emit("JoinRequested", owner=ctx.sender, effective_round=effective_round)
        return {"status": "join-scheduled", "effective_round": effective_round}

    @contract_method
    def request_leave(self, ctx: ContractContext, effective_round: int) -> dict[str, Any]:
        """Schedule the sender to leave the training cohort at a round boundary.

        The owner stays a miner (it keeps verifying blocks) but is excluded
        from grouping, submission, and settlement from ``effective_round`` on.
        The request is rejected if it would shrink the cohort below the pinned
        group count ``m`` — grouping every remaining round must stay feasible.
        """
        effective_round = self._validate_effective_round(ctx, effective_round)
        params = ctx.get("protocol_params")
        record = ctx.get(f"participant/{ctx.sender}")
        if record is None or record.get("role", "owner") != "owner":
            raise ContractStateError(f"{ctx.sender} is not a registered owner")
        intervals = ctx.get(f"membership/{ctx.sender}")
        if intervals is None:
            # Genesis member: materialize its implicit full-run interval.
            intervals = [{"from": 0, "until": None}]
        last = intervals[-1]
        if last["until"] is not None:
            raise ContractStateError(f"{ctx.sender} has already left (or scheduled its leave)")
        if effective_round <= int(last["from"]):
            raise ContractStateError(
                f"{ctx.sender} cannot leave at round {effective_round}: "
                f"it only becomes active at round {last['from']}"
            )
        # The sender's open interval covers every remaining round, so its exit
        # shrinks every cohort from effective_round on — all of them must stay
        # groupable, otherwise an earlier-boundary leave scheduled *after* a
        # later-boundary one could strand a future round below m owners.  The
        # cohort only changes at epoch boundaries, so one check per remaining
        # epoch covers every round.
        for epoch in _epochs_from_reader(ctx.get, int(params["n_rounds"])):
            if int(epoch["end"]) <= effective_round:
                continue
            remaining = [owner for owner in epoch["cohort"] if owner != ctx.sender]
            if len(remaining) < int(params["n_groups"]):
                boundary = max(int(epoch["start"]), effective_round)
                raise ContractStateError(
                    f"leave rejected: round {boundary} would keep only {len(remaining)} "
                    f"owners for {params['n_groups']} groups"
                )
        closed = intervals[:-1] + [{"from": last["from"], "until": effective_round}]
        self._record_membership(ctx, ctx.sender, closed)
        ctx.emit("LeaveRequested", owner=ctx.sender, effective_round=effective_round)
        return {"status": "leave-scheduled", "effective_round": effective_round}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @contract_method
    def get_protocol_params(self, ctx: ContractContext) -> dict[str, Any] | None:
        """Read the pinned protocol parameters (None until set)."""
        return ctx.get("protocol_params")

    @contract_method
    def get_participants(self, ctx: ContractContext) -> dict[str, dict[str, Any]]:
        """All registered participants and their public keys, keyed by owner id."""
        participants = {}
        for owner_id in ctx.get("participant_index", []):
            participants[owner_id] = ctx.get(f"participant/{owner_id}")
        return participants

    @contract_method
    def get_active_cohort(self, ctx: ContractContext, round_number: int) -> list[str]:
        """The sorted owner cohort active for ``round_number`` (pure chain state)."""
        return _cohort_from_reader(ctx.get, int(round_number))

    @contract_method
    def get_epochs(self, ctx: ContractContext) -> list[dict[str, Any]]:
        """The cohort epochs of the run: maximal round ranges with a fixed cohort."""
        params = ctx.get("protocol_params")
        if params is None:
            raise ContractStateError("protocol parameters have not been pinned on the registry")
        return _epochs_from_reader(ctx.get, int(params["n_rounds"]))

    @contract_method
    def is_setup_complete(self, ctx: ContractContext) -> bool:
        """True once parameters are pinned and every genesis owner slot has registered."""
        params = ctx.get("protocol_params")
        if params is None:
            return False
        return _genesis_owner_count(ctx.get) >= int(params["n_owners"])


# ----------------------------------------------------------------------
# Pure cohort/epoch derivation (shared by contracts, auditors, and the runtime)
# ----------------------------------------------------------------------

def _genesis_owner_count(read: Callable[..., Any]) -> int:
    """How many of the ``n_owners`` genesis slots are taken.

    A genesis owner registered through ``register_participant`` and has no
    membership record (or one opening at round 0, for a genesis member that
    later left).  Owners brought in by ``request_join`` open their first
    interval at a later round and deliberately do not consume a slot — dynamic
    joins grow the cohort past the setup-time agreement.
    """
    count = 0
    for owner_id in read("participant_index", []) or []:
        record = read(f"participant/{owner_id}", None)
        if record is None or record.get("role", "owner") != "owner":
            continue
        intervals = read(f"membership/{owner_id}", None)
        if intervals is None or int(intervals[0]["from"]) == 0:
            count += 1
    return count


def _cohort_from_reader(read: Callable[..., Any], round_number: int) -> list[str]:
    """Derive the active owner cohort for a round from registry state.

    ``read(key, default)`` is any reader over the registry namespace — a
    contract context's ``get``, a ``read_external`` closure, or a world-state
    getter.  An owner with no membership record is a genesis member, active
    for every round; otherwise it is active iff some recorded interval covers
    the round.
    """
    cohort = []
    for owner_id in read("participant_index", []) or []:
        record = read(f"participant/{owner_id}", None)
        if record is None or record.get("role", "owner") != "owner":
            continue
        intervals = read(f"membership/{owner_id}", None)
        if intervals is None:
            cohort.append(owner_id)
        elif any(
            int(iv["from"]) <= round_number and (iv["until"] is None or round_number < int(iv["until"]))
            for iv in intervals
        ):
            cohort.append(owner_id)
    return sorted(cohort)


def _epochs_from_reader(read: Callable[..., Any], n_rounds: int) -> list[dict[str, Any]]:
    """Derive the run's cohort epochs: ``[{epoch, start, end, cohort}, ...]``.

    Epoch boundaries are the distinct effective rounds of every membership
    interval (clipped to the round schedule); epoch ``i`` covers rounds
    ``[start, end)`` with one fixed cohort.
    """
    boundaries = {0}
    for owner_id in read("membership_index", []) or []:
        for interval in read(f"membership/{owner_id}", None) or []:
            for edge in (interval["from"], interval["until"]):
                if edge is not None and 0 < int(edge) < n_rounds:
                    boundaries.add(int(edge))
    starts = sorted(boundaries)
    epochs = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else n_rounds
        epochs.append(
            {"epoch": i, "start": start, "end": end, "cohort": _cohort_from_reader(read, start)}
        )
    return epochs


def _epoch_start_from_reader(read: Callable[..., Any], round_number: int) -> int:
    """The first round of the cohort epoch containing ``round_number``.

    The epoch start is the largest membership boundary (an interval's ``from``
    or ``until``) at or below the round; with no membership events it is round
    0.  Boundaries strictly above the round cannot move it, so the value is
    stable under later membership transactions — every one of them targets a
    strictly future round, which is what makes the consensus authority
    schedule recomputable from any replica's state.
    """
    start = 0
    for owner_id in read("membership_index", []) or []:
        for interval in read(f"membership/{owner_id}", None) or []:
            for edge in (interval["from"], interval["until"]):
                if edge is not None and start < int(edge) <= round_number:
                    start = int(edge)
    return start


def epoch_start_for_round_from_state(state, round_number: int) -> int:
    """Derive the epoch start of a round straight from a world state."""
    return _epoch_start_from_reader(
        lambda key, default=None: state.get(CONTRACT_NAME, key, default), int(round_number)
    )


def read_protocol_params(ctx: ContractContext) -> dict[str, Any]:
    """Helper for other contracts: read the registry's pinned parameters or fail."""
    params = ctx.read_external(CONTRACT_NAME, "protocol_params")
    if params is None:
        raise ContractStateError("protocol parameters have not been pinned on the registry")
    return params


def _external_reader(ctx: ContractContext) -> Callable[..., Any]:
    return lambda key, default=None: ctx.read_external(CONTRACT_NAME, key, default=default)


def read_active_cohort(ctx: ContractContext, round_number: int) -> list[str]:
    """Helper for other contracts: the owner cohort active for a round."""
    cohort = _cohort_from_reader(_external_reader(ctx), int(round_number))
    if not cohort:
        raise ContractStateError(f"no owners are active for round {round_number}")
    return cohort


def read_epochs(ctx: ContractContext, n_rounds: int) -> list[dict[str, Any]]:
    """Helper for other contracts: the run's cohort epochs."""
    return _epochs_from_reader(_external_reader(ctx), int(n_rounds))


def pinned_state_root_version(state) -> int:
    """The ``state_root_version`` the chain pinned at setup (1 before setup).

    Like ``sv_assembly_version``, the state commitment format is a
    consensus-relevant parameter recorded on the registry: auditors and
    verifiers read it from chain state instead of trusting out-of-band
    configuration.  ``state`` may be a live :class:`~repro.blockchain.state.WorldState`
    or a historical :class:`~repro.blockchain.state.StateView`.
    """
    params = state.get(CONTRACT_NAME, "protocol_params") or {}
    return int(params.get("state_root_version", 1))


def pinned_aggregation_topology(params: dict[str, Any]) -> tuple[str, int | None]:
    """The pinned ``(aggregation_topology, shard_size)`` of a parameter record.

    Chains that never opted into sharding carry no topology keys at all (so
    their parameter records — and block hashes — are byte-identical to
    pre-sharding chains); absence means the flat topology.
    """
    topology = str(params.get("aggregation_topology", "flat"))
    if topology == "flat":
        return "flat", None
    return topology, int(params["shard_size"])


def pinned_sv_estimator(params: dict[str, Any]) -> tuple[str, int]:
    """The pinned ``(sv_estimator, sv_samples)`` of a parameter record.

    Absent keys mean the exact assembly (the historical behaviour); the sample
    count only matters under the sampled estimator.
    """
    estimator = str(params.get("sv_estimator", "exact"))
    if estimator == "exact":
        return "exact", 0
    return estimator, int(params["sv_samples"])


def has_membership_events(state) -> bool:
    """Whether any join/leave has been recorded (False on fixed-cohort chains)."""
    return bool(state.get(CONTRACT_NAME, "membership_index", []))


def cohort_for_round_from_state(state, round_number: int) -> list[str]:
    """Derive the active cohort straight from a world state (runtime/auditor path)."""
    return _cohort_from_reader(
        lambda key, default=None: state.get(CONTRACT_NAME, key, default), int(round_number)
    )


def epochs_from_state(state, n_rounds: int) -> list[dict[str, Any]]:
    """Derive the cohort epochs straight from a world state (runtime/auditor path)."""
    return _epochs_from_reader(
        lambda key, default=None: state.get(CONTRACT_NAME, key, default), int(n_rounds)
    )
