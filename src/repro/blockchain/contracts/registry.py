"""Participant registry and protocol-parameter contract.

The off-chain setup stage of the paper has the owners agree on FL parameters,
secure-aggregation parameters, and contribution-evaluation parameters (the
permutation seed ``e``, the number of groups ``m``, the utility function) and
submit them to the blockchain.  This contract pins those parameters on chain
and records every participant's Diffie–Hellman public key, after which the
training and contribution contracts treat the registry as read-only ground
truth.
"""

from __future__ import annotations

from typing import Any

from repro.blockchain.contracts.base import Contract, ContractContext, contract_method
from repro.exceptions import ContractStateError
from repro.utils.serialization import canonical_dumps

CONTRACT_NAME = "registry"

_REQUIRED_PARAM_KEYS = (
    "n_owners",
    "n_groups",
    "n_rounds",
    "permutation_seed",
    "precision_bits",
    "field_bits",
)


class ParticipantRegistryContract(Contract):
    """On-chain registry of participants and agreed protocol parameters."""

    name = CONTRACT_NAME

    @contract_method
    def set_protocol_params(self, ctx: ContractContext, params: dict[str, Any]) -> dict[str, Any]:
        """Pin the agreed protocol parameters.

        The first successful call wins; later calls must carry byte-identical
        parameters (idempotent confirmation) or they fail — disagreement on
        setup parameters is a protocol error, not something to silently merge.
        """
        missing = [key for key in _REQUIRED_PARAM_KEYS if key not in params]
        if missing:
            raise ContractStateError(f"protocol params missing required keys: {missing}")
        existing = ctx.get("protocol_params")
        if existing is not None:
            if canonical_dumps(existing) != canonical_dumps(params):
                raise ContractStateError("protocol parameters are already pinned and differ")
            return {"status": "already-set"}
        ctx.set("protocol_params", params)
        ctx.emit("ProtocolParamsSet", by=ctx.sender, n_owners=params["n_owners"], n_groups=params["n_groups"])
        return {"status": "set"}

    @contract_method
    def register_participant(self, ctx: ContractContext, public_key: int, role: str = "owner") -> dict[str, Any]:
        """Register the sender with its Diffie–Hellman public key.

        Re-registration with the same key is idempotent; changing the key after
        registration is rejected (it would break already-derived pairwise masks).
        """
        if public_key <= 1:
            raise ContractStateError("public key must be a group element greater than 1")
        record_key = f"participant/{ctx.sender}"
        existing = ctx.get(record_key)
        if existing is not None:
            if int(existing["public_key"]) != int(public_key):
                raise ContractStateError(f"participant {ctx.sender} already registered with a different key")
            return {"status": "already-registered"}
        index = ctx.get("participant_index", [])
        params = ctx.get("protocol_params")
        if params is not None and len(index) >= int(params["n_owners"]):
            raise ContractStateError("registry is full: all owner slots are taken")
        ctx.set(record_key, {"public_key": int(public_key), "role": role, "registered_at": ctx.block_height})
        ctx.set("participant_index", sorted(index + [ctx.sender]))
        ctx.emit("ParticipantRegistered", owner=ctx.sender, role=role)
        return {"status": "registered"}

    @contract_method
    def get_protocol_params(self, ctx: ContractContext) -> dict[str, Any] | None:
        """Read the pinned protocol parameters (None until set)."""
        return ctx.get("protocol_params")

    @contract_method
    def get_participants(self, ctx: ContractContext) -> dict[str, dict[str, Any]]:
        """All registered participants and their public keys, keyed by owner id."""
        participants = {}
        for owner_id in ctx.get("participant_index", []):
            participants[owner_id] = ctx.get(f"participant/{owner_id}")
        return participants

    @contract_method
    def is_setup_complete(self, ctx: ContractContext) -> bool:
        """True once parameters are pinned and every owner slot has registered."""
        params = ctx.get("protocol_params")
        if params is None:
            return False
        return len(ctx.get("participant_index", [])) >= int(params["n_owners"])


def read_protocol_params(ctx: ContractContext) -> dict[str, Any]:
    """Helper for other contracts: read the registry's pinned parameters or fail."""
    params = ctx.read_external(CONTRACT_NAME, "protocol_params")
    if params is None:
        raise ContractStateError("protocol parameters have not been pinned on the registry")
    return params


def read_participants(ctx: ContractContext) -> dict[str, dict[str, Any]]:
    """Helper for other contracts: read all registered participants.

    Other contracts cannot enumerate a foreign namespace through the context,
    so the registry maintains an index of owner ids under a single key.
    """
    participants = {}
    index = ctx.read_external(CONTRACT_NAME, "participant_index", default=[])
    for owner_id in index:
        record = ctx.read_external(CONTRACT_NAME, f"participant/{owner_id}")
        if record is not None:
            participants[owner_id] = record
    return participants
