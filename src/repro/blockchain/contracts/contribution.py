"""Contribution-evaluation contract: Algorithm 1 (GroupSV) executed on chain.

After a training round is finalized, any participant (typically the round's
leader) submits an ``evaluate_round`` transaction.  The contract

1. reads the round's published group models and grouping from the training
   contract,
2. builds coalition models over the groups by plain averaging (line 4),
3. scores every coalition with the agreed utility function — accuracy on the
   public validation set the contract was deployed with (line 6),
4. computes each group's Shapley value and splits it equally among the group's
   members (lines 5-7), and
5. accumulates per-user totals ``v_i = Σ_r v_i^r``.

Because the contract is deterministic, a fraudulent leader cannot inflate its
own contribution: honest miners re-execute the evaluation and reject any block
whose receipts differ (see the adversarial integration tests).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blockchain.contracts.base import Contract, ContractContext, contract_method
from repro.blockchain.contracts.fl_training import read_round_record
from repro.blockchain.contracts.registry import (
    pinned_sv_estimator,
    read_epochs,
    read_protocol_params,
)
from repro.exceptions import ContractStateError, ValidationError
from repro.shapley.engine import coalition_utility_table
from repro.shapley.estimator import estimator_seed_for_round, sampled_group_shapley
from repro.shapley.group import assemble_group_values
from repro.shapley.utility import AccuracyUtility

CONTRACT_NAME = "contribution"


class ContributionContract(Contract):
    """On-chain GroupSV evaluation against a public validation set.

    The validation set and model family are part of the contract's deployment
    (agreed at the off-chain setup stage), so every miner scores coalitions
    identically.
    """

    name = CONTRACT_NAME

    def __init__(
        self,
        validation_features: np.ndarray,
        validation_labels: np.ndarray,
        n_classes: int,
        evaluation_backend=None,
    ) -> None:
        """``evaluation_backend`` is an off-chain execution knob: it routes the
        sampled estimator's batched committee scoring (serial or process-pool)
        and never changes a bit of the receipts — miners with different
        backends stay in consensus."""
        super().__init__()
        self.evaluation_backend = evaluation_backend
        self.validation_features = np.asarray(validation_features, dtype=np.float64)
        self.validation_labels = np.asarray(validation_labels).ravel().astype(int)
        if self.validation_features.ndim != 2:
            raise ValidationError("validation features must be 2-D")
        if self.validation_features.shape[0] != self.validation_labels.size:
            raise ValidationError("validation features and labels disagree on sample count")
        if self.validation_features.shape[0] == 0:
            raise ValidationError("the contribution contract needs a non-empty validation set")
        self.n_classes = int(n_classes)
        self._scorer = AccuracyUtility(self.validation_features, self.validation_labels, self.n_classes)

    # ------------------------------------------------------------------
    # Utility scoring
    # ------------------------------------------------------------------

    def _score_vector(self, vector: np.ndarray) -> float:
        """u(.) — accuracy of a flat-parameter model on the public validation set."""
        return self._scorer.score_vector(np.asarray(vector, dtype=np.float64))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @contract_method
    def evaluate_round(self, ctx: ContractContext, round_number: int) -> dict[str, Any]:
        """Run Algorithm 1 lines 4-7 for a finalized training round."""
        round_number = int(round_number)
        if ctx.contains(f"evaluated/{round_number}"):
            raise ContractStateError(f"round {round_number} has already been evaluated")
        params = read_protocol_params(ctx)  # fails early if setup never completed
        record = read_round_record(ctx, round_number)
        groups: list[list[str]] = [list(group) for group in record["groups"]]
        group_models = [np.asarray(model, dtype=np.float64) for model in record["group_models"]]
        if len(groups) != len(group_models):
            raise ContractStateError("round record is inconsistent: groups vs group models")

        m = len(groups)
        labels = [f"group-{j}" for j in range(m)]
        estimator_name, sv_samples = pinned_sv_estimator(params)

        if estimator_name == "sampled":
            # Sampled GroupSV: the estimator seed is a pure function of the
            # pinned permutation seed and the round, so the proposer cannot
            # shop for a favourable sample and auditors re-derive it from
            # chain state.  The receipt carries the per-group half-widths and
            # the estimator metadata; the audit re-runs the estimator and
            # checks "within bound" instead of exact equality.
            seed = estimator_seed_for_round(int(params["permutation_seed"]), round_number)
            estimate = sampled_group_shapley(
                labels,
                dict(zip(labels, group_models)),
                self._scorer,
                n_permutations=sv_samples,
                seed=seed,
                backend=self.evaluation_backend,
            )
            group_values = [estimate.values[label] for label in labels]
            group_half_widths = [estimate.half_widths[label] for label in labels]
            global_utility = estimate.grand_utility
            estimator_receipt: dict[str, Any] = {
                "name": "sampled",
                "n_samples": int(estimate.n_permutations),
                "seed": int(estimate.seed),
                "confidence": float(estimate.confidence),
                "tolerance": float(estimate.tolerance),
            }
            if estimate.telemetry is not None:
                # Only the deterministic counters go on chain: they are a pure
                # function of (labels, n_samples, seed), so every miner writes
                # the same receipt regardless of backend or worker count.
                # Wall-clock time stays off-chain (see the harness telemetry).
                estimator_receipt["telemetry"] = {
                    "coalitions": int(estimate.telemetry["coalitions"]),
                    "cache_hits": int(estimate.telemetry["cache_hits"]),
                    "batches": int(estimate.telemetry["batches"]),
                }
            evaluation_extras: dict[str, Any] = {
                "estimator": estimator_receipt,
                "group_half_widths": [float(w) for w in group_half_widths],
            }
            utilities: dict[tuple[str, ...], float] = {}
        else:
            # Line 4: coalition models are plain averages of the member group
            # models.  The bitmask engine builds all 2^m averages with one
            # subset-sum DP and scores them in a single batched pass (with a
            # constant-memory scalar fallback past the engine's budgets).
            utilities = coalition_utility_table(dict(zip(labels, group_models)), self._scorer)

            # Lines 5-6: group-level Shapley values from the utility table,
            # using the assembly version pinned on the registry at setup (v1 =
            # scalar reference formula, bit-for-bit the historical receipts;
            # v2 = the vectorized bitmask assembly for large m).  The
            # evaluation is deterministic for a given software stack (code
            # version + BLAS backend, which the protocol already assumes is
            # shared), so honest miners compute identical receipts; regression
            # tests pin the values against the pre-engine implementation on
            # seeded workloads.
            sv_assembly_version = int(params.get("sv_assembly_version", 1))
            group_value_map = assemble_group_values(labels, utilities, sv_assembly_version)
            group_values = [group_value_map[label] for label in labels]
            group_half_widths = []
            # Coalition keys are sorted tuples; tuple(labels) is numeric
            # order, which stops matching once "group-10" sorts before
            # "group-2".
            global_utility = utilities[tuple(sorted(labels))]
            evaluation_extras = {}

        # Line 7: split each group's value equally among its members.
        user_values: dict[str, float] = {}
        for group, value in zip(groups, group_values):
            share = value / len(group)
            for owner in group:
                user_values[owner] = share
        if group_half_widths:
            # An owner's share is value/|group|, so its bound shrinks the
            # same way — the estimator's CI is linear in the scaling.
            user_half_widths: dict[str, float] = {}
            for group, width in zip(groups, group_half_widths):
                for owner in group:
                    user_half_widths[owner] = float(width) / len(group)
            evaluation_extras["user_half_widths"] = user_half_widths

        totals = ctx.get("totals", {})
        for owner, value in user_values.items():
            totals[owner] = float(totals.get(owner, 0.0) + value)

        ctx.set(
            f"evaluation/{round_number}",
            {
                "round": round_number,
                "groups": groups,
                "group_values": [float(v) for v in group_values],
                "user_values": {k: float(v) for k, v in user_values.items()},
                "coalition_utilities": {
                    "/".join(coalition): float(value)
                    for coalition, value in utilities.items()
                    if coalition
                },
                "global_utility": float(global_utility),
                **evaluation_extras,
            },
        )
        ctx.set("totals", totals)
        ctx.set(f"evaluated/{round_number}", True)
        ctx.emit(
            "RoundEvaluated",
            round=round_number,
            by=ctx.sender,
            global_utility=float(global_utility),
        )
        return {"status": "evaluated", "round": round_number, "user_values": user_values}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @contract_method
    def get_round_evaluation(self, ctx: ContractContext, round_number: int) -> dict[str, Any] | None:
        """The stored evaluation record for a round (None if not evaluated)."""
        return ctx.get(f"evaluation/{int(round_number)}")

    @contract_method
    def get_total_contributions(self, ctx: ContractContext) -> dict[str, float]:
        """Accumulated contributions v_i = Σ_r v_i^r for every owner."""
        return ctx.get("totals", {})

    @contract_method
    def get_epoch_contributions(self, ctx: ContractContext, epoch: int) -> dict[str, float]:
        """Accumulated contributions over one cohort epoch's rounds.

        Derived on the fly from the per-round evaluation records and the
        registry's epoch view, so it is a pure function of chain state no
        matter when (or whether) membership events were recorded.
        """
        return read_epoch_contributions(ctx, epoch)


def read_total_contributions(ctx: ContractContext) -> dict[str, float]:
    """Helper for the reward contract: read accumulated contributions."""
    totals = ctx.read_external(CONTRACT_NAME, "totals", default=None)
    if totals is None:
        raise ContractStateError("no contributions have been recorded yet")
    return dict(totals)


def epoch_contributions_for(ctx: ContractContext, epoch_record: dict[str, Any]) -> dict[str, float]:
    """Sum one epoch record's evaluated rounds into per-owner totals.

    Only owners grouped in the epoch's rounds appear — an owner that joined
    later or left earlier has no entry, which is exactly what per-epoch
    settlement pays against.  Callers that already hold the epoch table (see
    ``RewardContract.distribute_by_epoch``) use this directly instead of
    re-deriving it per epoch through :func:`read_epoch_contributions`.
    """
    totals: dict[str, float] = {}
    for round_number in range(int(epoch_record["start"]), int(epoch_record["end"])):
        evaluation = ctx.read_external(CONTRACT_NAME, f"evaluation/{round_number}")
        if evaluation is None:
            continue
        for owner, value in evaluation["user_values"].items():
            totals[owner] = totals.get(owner, 0.0) + float(value)
    return totals


def read_epoch_contributions(ctx: ContractContext, epoch: int) -> dict[str, float]:
    """One epoch's accumulated contributions, derived purely from chain state."""
    params = read_protocol_params(ctx)
    for record in read_epochs(ctx, int(params["n_rounds"])):
        if int(record["epoch"]) == int(epoch):
            return epoch_contributions_for(ctx, record)
    raise ContractStateError(f"epoch {epoch} does not exist on this chain")
