"""The deterministic smart-contract runtime.

A contract is a subclass of :class:`Contract` whose public entry points are
decorated with :func:`contract_method`.  The :class:`ContractRuntime` maps a
:class:`~repro.blockchain.transaction.Transaction` to a contract method call,
provides the call with a :class:`ContractContext`, meters an abstract gas cost,
and converts exceptions into failed receipts (with state rolled back by the
caller, see :meth:`repro.blockchain.chain.Blockchain.execute_transaction`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.blockchain.state import WorldState
from repro.exceptions import ContractError, ContractNotFoundError, ValidationError
from repro.utils.serialization import canonical_dumps

_CONTRACT_METHOD_FLAG = "_is_contract_method"

# Abstract gas schedule: a base charge per call plus a byte charge on arguments
# and on every state write. These numbers only need to be consistent, not
# realistic; the throughput analysis reports relative costs.
GAS_BASE_CALL = 100
GAS_PER_ARG_BYTE = 1
GAS_PER_WRITE = 50
GAS_PER_WRITE_BYTE = 1


def contract_method(func: Callable) -> Callable:
    """Mark a contract method as callable from a transaction."""
    setattr(func, _CONTRACT_METHOD_FLAG, True)
    return func


@dataclass
class ContractContext:
    """Everything a contract method may observe or touch during execution.

    Attributes:
        state: the world state (namespaced access is enforced via helpers).
        sender: identity of the transaction sender.
        contract_name: namespace the contract reads and writes under.
        block_height: height of the block being executed.
        events: events emitted by the call (appended via :meth:`emit`).
        gas_used: running abstract gas total for this call.
    """

    state: WorldState
    sender: str
    contract_name: str
    block_height: int = 0
    events: list[dict[str, Any]] = field(default_factory=list)
    gas_used: int = 0

    def get(self, key: str, default: Any = None) -> Any:
        """Read a value from this contract's namespace."""
        return self.state.get(self.contract_name, key, default)

    def set(self, key: str, value: Any) -> None:
        """Write a value to this contract's namespace (gas metered).

        The canonical serialization produced for gas metering is handed to the
        state store, so a Merkle-rooted state (``state_root_version=2``) hashes
        the write's leaf without serializing the value a second time.
        """
        try:
            encoded = canonical_dumps(value)
        except ValidationError as exc:
            raise ContractError(f"contract wrote a non-serializable value under {key!r}: {exc}") from exc
        self.gas_used += GAS_PER_WRITE + GAS_PER_WRITE_BYTE * len(encoded)
        self.state.set(self.contract_name, key, value, encoded=encoded)

    def delete(self, key: str) -> None:
        """Delete a key from this contract's namespace."""
        self.gas_used += GAS_PER_WRITE
        self.state.delete(self.contract_name, key)

    def contains(self, key: str) -> bool:
        """Whether a key exists in this contract's namespace."""
        return self.state.contains(self.contract_name, key)

    def keys(self) -> list[str]:
        """All keys in this contract's namespace."""
        return self.state.keys(self.contract_name)

    def read_external(self, contract_name: str, key: str, default: Any = None) -> Any:
        """Read another contract's state (contracts may read, never write, across namespaces)."""
        return self.state.get(contract_name, key, default)

    def emit(self, name: str, **data: Any) -> None:
        """Emit an event recorded in the transaction receipt."""
        self.events.append({"name": name, "data": data})


class Contract:
    """Base class for contracts.  Subclasses define ``name`` and decorated methods."""

    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            raise ValidationError(f"{type(self).__name__} must define a contract name")

    def callable_methods(self) -> dict[str, Callable]:
        """Map of externally callable method names to bound methods."""
        methods = {}
        for attr_name, member in inspect.getmembers(self, predicate=inspect.ismethod):
            if getattr(member, _CONTRACT_METHOD_FLAG, False):
                methods[attr_name] = member
        return methods


class ContractRuntime:
    """Registry plus executor for contracts.

    The runtime is deliberately stateless between calls: all persistent data
    lives in the :class:`WorldState`, so two runtimes with the same registered
    contract classes are interchangeable — which is how miner re-execution
    reproduces a leader's results bit-for-bit.
    """

    def __init__(self) -> None:
        self._contracts: dict[str, Contract] = {}

    def register(self, contract: Contract) -> None:
        """Register a contract instance under its declared name."""
        if contract.name in self._contracts:
            raise ContractError(f"contract {contract.name!r} is already registered")
        self._contracts[contract.name] = contract

    def registered_names(self) -> list[str]:
        """Names of registered contracts, sorted."""
        return sorted(self._contracts)

    def get(self, name: str) -> Contract:
        """Look up a contract by name."""
        if name not in self._contracts:
            raise ContractNotFoundError(f"no contract registered under {name!r}")
        return self._contracts[name]

    def execute(
        self,
        state: WorldState,
        sender: str,
        contract_name: str,
        method_name: str,
        args: dict[str, Any],
        block_height: int = 0,
    ) -> tuple[Any, list[dict[str, Any]], int]:
        """Execute a contract call against ``state``.

        Returns ``(result, events, gas_used)``.  Raises :class:`ContractError`
        (or a subclass) on failure; the caller is responsible for rolling the
        state back in that case.
        """
        contract = self.get(contract_name)
        methods = contract.callable_methods()
        if method_name not in methods:
            raise ContractError(f"contract {contract_name!r} has no method {method_name!r}")
        context = ContractContext(
            state=state,
            sender=sender,
            contract_name=contract_name,
            block_height=block_height,
        )
        context.gas_used += GAS_BASE_CALL + GAS_PER_ARG_BYTE * len(canonical_dumps(args))
        method = methods[method_name]
        try:
            result = method(context, **args)
        except ContractError:
            raise
        except TypeError as exc:
            raise ContractError(f"bad arguments for {contract_name}.{method_name}: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 - contract faults become failed receipts
            raise ContractError(f"{contract_name}.{method_name} failed: {exc}") from exc
        return result, context.events, context.gas_used
