"""FL training contract: masked-update collection and secure group aggregation.

Per round ``r`` the contract

1. accepts one masked update per registered owner (`submit_masked_update`),
   checking that the owner's claimed group matches the canonical grouping
   derived from the registry's permutation seed and group count;
2. once all owners have submitted, `finalize_round` sums the masked payloads of
   each group — the pairwise masks cancel — decodes the fixed-point sum into
   the group-average model ``W_j``, averages the group models into the global
   model ``W_G``, and publishes both.

Everything the contract does is a deterministic function of on-chain data, so
any miner re-executing the round reproduces the same group and global models.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blockchain.contracts.base import Contract, ContractContext, contract_method
from repro.blockchain.contracts.registry import (
    pinned_aggregation_topology,
    read_active_cohort,
    read_protocol_params,
)
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.sharding import shard_group
from repro.exceptions import ContractStateError
from repro.shapley.group import group_members, make_groups

CONTRACT_NAME = "fl_training"


def _codec_from_params(params: dict[str, Any]) -> FixedPointCodec:
    """Build the fixed-point codec pinned at setup time."""
    return FixedPointCodec(
        precision_bits=int(params["precision_bits"]),
        field_bits=int(params["field_bits"]),
        max_summands=int(params.get("max_summands", 256)),
    )


class FLTrainingContract(Contract):
    """Collects masked updates and performs the on-chain secure aggregation."""

    name = CONTRACT_NAME

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @contract_method
    def submit_masked_update(
        self,
        ctx: ContractContext,
        round_number: int,
        group_id: int,
        payload: np.ndarray,
        n_samples: int = 0,
        shard_id: int | None = None,
    ) -> dict[str, Any]:
        """Record the sender's masked local model for a round.

        The payload is the fixed-point encoded, pairwise-masked flat weight
        vector.  The claimed ``group_id`` must match the canonical grouping for
        this round (derived from the pinned permutation seed over the round's
        *active cohort* — the registry's epoch view), and double submissions
        are rejected.  Owners outside the round's cohort cannot submit.

        Under the sharded topology the sender must also claim its ``shard_id``,
        checked against the canonical shard assignment (contiguous balanced
        slices of the group's dealt order — :func:`repro.crypto.sharding.shard_group`);
        masks only cancel within the correct shard, so a wrong claim would
        corrupt two shard sums at once.  Flat chains reject shard claims and
        keep byte-identical update records.
        """
        params = read_protocol_params(ctx)
        round_number = int(round_number)
        if round_number < 0 or round_number >= int(params["n_rounds"]):
            raise ContractStateError(f"round {round_number} is outside the configured schedule")
        if ctx.contains(f"finalized/{round_number}"):
            raise ContractStateError(f"round {round_number} is already finalized")

        owners = read_active_cohort(ctx, round_number)
        if ctx.sender not in owners:
            raise ContractStateError(
                f"{ctx.sender} is not in the round-{round_number} cohort"
            )
        groups = make_groups(owners, int(params["n_groups"]), int(params["permutation_seed"]), round_number)
        expected_group = group_members(groups)[ctx.sender]
        if int(group_id) != expected_group:
            raise ContractStateError(
                f"{ctx.sender} claims group {group_id} but the round-{round_number} "
                f"permutation assigns it to group {expected_group}"
            )

        topology, shard_size = pinned_aggregation_topology(params)
        expected_shard: int | None = None
        if topology == "sharded":
            shards = shard_group(groups[expected_group], shard_size)
            expected_shard = next(
                index for index, shard in enumerate(shards) if ctx.sender in shard
            )
            if shard_id is None or int(shard_id) != expected_shard:
                raise ContractStateError(
                    f"{ctx.sender} claims shard {shard_id} but the canonical assignment "
                    f"puts it in shard {expected_shard} of group {expected_group}"
                )
        elif shard_id is not None:
            raise ContractStateError("shard claims are invalid under the flat aggregation topology")

        update_key = f"update/{round_number}/{ctx.sender}"
        if ctx.contains(update_key):
            raise ContractStateError(f"{ctx.sender} already submitted an update for round {round_number}")
        payload = np.asarray(payload, dtype=np.uint64)
        expected_dim = params.get("model_dimension")
        if expected_dim is not None and payload.size != int(expected_dim):
            raise ContractStateError(
                f"payload has dimension {payload.size}, expected {expected_dim}"
            )
        record = {
            "owner": ctx.sender,
            "round": round_number,
            "group": expected_group,
            "payload": payload,
            "n_samples": int(n_samples),
        }
        if expected_shard is not None:
            record["shard"] = expected_shard
        ctx.set(update_key, record)
        submitted = ctx.get(f"submitted/{round_number}", [])
        ctx.set(f"submitted/{round_number}", sorted(submitted + [ctx.sender]))
        ctx.emit("MaskedUpdateSubmitted", owner=ctx.sender, round=round_number, group=expected_group)
        return {"status": "accepted", "group": expected_group}

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    @contract_method
    def finalize_round(self, ctx: ContractContext, round_number: int) -> dict[str, Any]:
        """Aggregate a round once every owner in the round's cohort has submitted.

        Publishes, per group, the decoded group-average model ``W_j`` and the
        global model ``W_G`` (the unweighted mean of the group models, matching
        Algorithm 1), plus the grouping used — everything the contribution
        contract needs.  The required submitter set is the registry's active
        cohort for the round, so owners that left (or have not yet joined) are
        neither awaited nor aggregated.
        """
        params = read_protocol_params(ctx)
        round_number = int(round_number)
        if ctx.contains(f"finalized/{round_number}"):
            raise ContractStateError(f"round {round_number} is already finalized")
        owners = read_active_cohort(ctx, round_number)
        submitted = ctx.get(f"submitted/{round_number}", [])
        missing = sorted(set(owners) - set(submitted))
        if missing:
            raise ContractStateError(f"round {round_number} is missing updates from: {missing}")

        codec = _codec_from_params(params)
        groups = make_groups(owners, int(params["n_groups"]), int(params["permutation_seed"]), round_number)
        topology, shard_size = pinned_aggregation_topology(params)

        round_shards: list[list[list[str]]] | None = None
        if topology == "sharded":
            round_shards = [shard_group(group, shard_size) for group in groups]

        group_models: list[np.ndarray] = []
        group_sizes: list[int] = []
        for group_index, group in enumerate(groups):
            # Flat: one running sum over the group.  Sharded: sum each
            # committee, then sum the shard sums — ring addition is
            # associative, so the masks (which cancel per shard) vanish either
            # way and the decoded group model is identical to the flat path.
            summands = [list(group)] if round_shards is None else round_shards[group_index]
            total: np.ndarray | None = None
            for shard in summands:
                shard_total: np.ndarray | None = None
                for owner in shard:
                    update = ctx.get(f"update/{round_number}/{owner}")
                    payload = np.asarray(update["payload"], dtype=np.uint64)
                    shard_total = payload if shard_total is None else codec.add(shard_total, payload)
                total = shard_total if total is None else codec.add(total, shard_total)
            group_sum = codec.decode_sum(total, n_summands=len(group))
            group_models.append(group_sum / float(len(group)))
            group_sizes.append(len(group))

        global_model = np.mean(np.stack(group_models, axis=0), axis=0)
        round_record: dict[str, Any] = {
            "groups": [list(group) for group in groups],
            "group_sizes": group_sizes,
            "group_models": [model for model in group_models],
            "global_model": global_model,
        }
        if round_shards is not None:
            round_record["shards"] = [
                [list(shard) for shard in group_shards] for group_shards in round_shards
            ]
        ctx.set(f"round/{round_number}", round_record)
        ctx.set(f"finalized/{round_number}", True)
        ctx.set("latest_round", round_number)
        ctx.emit("RoundFinalized", round=round_number, n_groups=len(groups), by=ctx.sender)
        return {"status": "finalized", "round": round_number, "n_groups": len(groups)}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @contract_method
    def get_round(self, ctx: ContractContext, round_number: int) -> dict[str, Any] | None:
        """The published aggregation record for a round (None before finalization)."""
        return ctx.get(f"round/{int(round_number)}")

    @contract_method
    def get_global_model(self, ctx: ContractContext, round_number: int) -> np.ndarray | None:
        """The global model W_G published for a round (None before finalization)."""
        record = ctx.get(f"round/{int(round_number)}")
        return None if record is None else record["global_model"]

    @contract_method
    def get_submissions(self, ctx: ContractContext, round_number: int) -> list[str]:
        """Owners that have submitted an update for the round so far."""
        return ctx.get(f"submitted/{int(round_number)}", [])


def read_round_record(ctx: ContractContext, round_number: int) -> dict[str, Any]:
    """Helper for the contribution contract: read a finalized round or fail."""
    record = ctx.read_external(CONTRACT_NAME, f"round/{int(round_number)}")
    if record is None:
        raise ContractStateError(f"round {round_number} has not been finalized on the training contract")
    return record
