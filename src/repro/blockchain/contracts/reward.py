"""Reward contract: converts accumulated contributions into token payouts.

The paper motivates contribution evaluation with incentive allocation ("a fair
reward based on their contributions").  This contract closes that loop: given a
reward pool, it pays each owner proportionally to its positive accumulated
Shapley value (owners with non-positive contributions receive nothing), and it
keeps auditable per-owner balances.

On dynamic-membership chains the contract additionally settles *per cohort
epoch*: each epoch's rounds accumulated their own contribution totals on the
contribution contract, so an owner absent from an epoch simply has no entry in
that epoch's totals and earns nothing for it.  ``distribute_epoch`` pays one
epoch; ``distribute_by_epoch`` splits a pool across every recorded epoch
proportionally to the epoch's positive SV mass and settles each epoch
internally the same way.
"""

from __future__ import annotations

from typing import Any

from repro.blockchain.contracts.base import Contract, ContractContext, contract_method
from repro.blockchain.contracts.contribution import (
    epoch_contributions_for,
    read_epoch_contributions,
    read_total_contributions,
)
from repro.blockchain.contracts.registry import read_epochs, read_protocol_params
from repro.exceptions import ContractStateError

CONTRACT_NAME = "reward"


def proportional_payouts(totals: dict[str, float], reward_pool: float) -> dict[str, float]:
    """Split a pool proportionally to positive contributions (equal split at σ=0).

    Module-level so the transparency audit recomputes settlements with the
    exact same rule the contract executes.
    """
    positive = {owner: max(float(value), 0.0) for owner, value in totals.items()}
    weight_sum = sum(positive.values())
    if weight_sum <= 0.0:
        return {owner: reward_pool / len(totals) for owner in totals}
    return {owner: reward_pool * weight / weight_sum for owner, weight in positive.items()}


def mass_proportional_pools(
    epoch_totals: dict[int, dict[str, float]],
    masses: dict[int, float],
    reward_pool: float,
) -> dict[int, float]:
    """The per-epoch pool split of ``distribute_by_epoch``.

    Epochs with no settleable value get nothing, the split is proportional to
    positive SV mass (equal when no epoch has positive mass), and the last
    settleable epoch takes the float remainder so the pools sum exactly to
    ``reward_pool``.  Module-level for the same reason as
    :func:`proportional_payouts`: the transparency audit re-derives the split
    with the very rule the contract executes.
    """
    epochs = [epoch for epoch in sorted(epoch_totals) if epoch_totals[epoch]]
    if not epochs:
        return {}
    total_mass = sum(masses[epoch] for epoch in epochs)
    pools: dict[int, float] = {}
    allocated = 0.0
    for i, epoch in enumerate(epochs):
        if i == len(epochs) - 1:
            pools[epoch] = float(reward_pool) - allocated
        elif total_mass > 0.0:
            pools[epoch] = float(reward_pool) * masses[epoch] / total_mass
        else:
            pools[epoch] = float(reward_pool) / len(epochs)
        allocated += pools[epoch]
    return pools


class RewardContract(Contract):
    """Proportional reward distribution over accumulated contributions."""

    name = CONTRACT_NAME

    @contract_method
    def distribute(self, ctx: ContractContext, reward_pool: float, label: str = "final") -> dict[str, Any]:
        """Distribute ``reward_pool`` tokens proportionally to positive contributions.

        A distribution label can only be used once, so re-running the protocol's
        final step cannot double-pay.  If every contribution is non-positive the
        pool is split equally (the degenerate σ = 0 case where all owners are
        interchangeable).
        """
        if reward_pool < 0:
            raise ContractStateError("reward_pool must be non-negative")
        if ctx.contains(f"distribution/{label}"):
            raise ContractStateError(f"distribution {label!r} has already been executed")
        totals = read_total_contributions(ctx)
        if not totals:
            raise ContractStateError("there are no contributions to reward")

        payouts = proportional_payouts(totals, reward_pool)
        self._credit(ctx, payouts)
        ctx.set(
            f"distribution/{label}",
            {"reward_pool": float(reward_pool), "payouts": {k: float(v) for k, v in payouts.items()}},
        )
        ctx.emit("RewardsDistributed", label=label, reward_pool=float(reward_pool), by=ctx.sender)
        return {"status": "distributed", "payouts": payouts}

    @contract_method
    def distribute_epoch(
        self, ctx: ContractContext, epoch: int, reward_pool: float, label: str | None = None
    ) -> dict[str, Any]:
        """Distribute a pool over one cohort epoch's accumulated contributions.

        Only owners active during the epoch appear in its totals, so a joiner
        earns nothing for epochs before its entry and a departed owner earns
        nothing after its exit.  Each epoch label is one-shot, like ``distribute``.
        """
        if reward_pool < 0:
            raise ContractStateError("reward_pool must be non-negative")
        epoch = int(epoch)
        label = f"epoch-{epoch}" if label is None else label
        if ctx.contains(f"distribution/{label}"):
            raise ContractStateError(f"distribution {label!r} has already been executed")
        totals = read_epoch_contributions(ctx, epoch)
        if not totals:
            raise ContractStateError(f"epoch {epoch} has no contributions to reward")

        payouts = proportional_payouts(totals, float(reward_pool))
        self._credit(ctx, payouts)
        ctx.set(
            f"distribution/{label}",
            {
                "epoch": epoch,
                "reward_pool": float(reward_pool),
                "payouts": {k: float(v) for k, v in payouts.items()},
            },
        )
        ctx.emit("EpochRewardsDistributed", label=label, epoch=epoch, reward_pool=float(reward_pool), by=ctx.sender)
        return {"status": "distributed", "epoch": epoch, "payouts": payouts}

    @contract_method
    def distribute_by_epoch(self, ctx: ContractContext, reward_pool: float, label: str = "final") -> dict[str, Any]:
        """Split a pool across every recorded epoch by positive SV mass, then settle each.

        The per-epoch pools sum to ``reward_pool`` exactly (the last epoch takes
        the remainder), each epoch pays its own cohort proportionally, and the
        stored record keeps the full per-epoch breakdown for auditors.  When no
        epoch has positive mass the pool splits equally across epochs.
        """
        if reward_pool < 0:
            raise ContractStateError("reward_pool must be non-negative")
        if ctx.contains(f"distribution/{label}"):
            raise ContractStateError(f"distribution {label!r} has already been executed")
        params = read_protocol_params(ctx)
        epoch_totals = {
            int(record["epoch"]): epoch_contributions_for(ctx, record)
            for record in read_epochs(ctx, int(params["n_rounds"]))
        }
        masses = {
            epoch: sum(max(float(v), 0.0) for v in totals.values())
            for epoch, totals in epoch_totals.items()
        }
        # An epoch with no evaluated rounds has nobody to pay; it gets no pool.
        pools = mass_proportional_pools(epoch_totals, masses, float(reward_pool))
        if not pools:
            raise ContractStateError("no epoch contributions have been recorded")

        breakdown: dict[str, dict[str, Any]] = {}
        combined: dict[str, float] = {}
        for epoch in sorted(pools):
            payouts = proportional_payouts(epoch_totals[epoch], pools[epoch])
            breakdown[str(epoch)] = {
                "reward_pool": float(pools[epoch]),
                "sv_mass": float(masses[epoch]),
                "payouts": {k: float(v) for k, v in payouts.items()},
            }
            for owner, payout in payouts.items():
                combined[owner] = combined.get(owner, 0.0) + float(payout)

        self._credit(ctx, combined)
        ctx.set(
            f"distribution/{label}",
            {
                "reward_pool": float(reward_pool),
                "payouts": {k: float(v) for k, v in combined.items()},
                "epochs": breakdown,
            },
        )
        ctx.emit(
            "RewardsDistributed",
            label=label,
            reward_pool=float(reward_pool),
            by=ctx.sender,
            epochs=len(pools),
        )
        return {"status": "distributed", "payouts": combined, "epochs": breakdown}

    def _credit(self, ctx: ContractContext, payouts: dict[str, float]) -> None:
        """Accumulate payouts into the auditable per-owner balances."""
        balances = ctx.get("balances", {})
        for owner, payout in payouts.items():
            balances[owner] = float(balances.get(owner, 0.0) + payout)
        ctx.set("balances", balances)

    @contract_method
    def get_balances(self, ctx: ContractContext) -> dict[str, float]:
        """Current token balance per owner."""
        return ctx.get("balances", {})

    @contract_method
    def get_distribution(self, ctx: ContractContext, label: str = "final") -> dict[str, Any] | None:
        """A specific distribution record (None if that label was never executed)."""
        return ctx.get(f"distribution/{label}")
