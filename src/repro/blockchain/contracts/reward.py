"""Reward contract: converts accumulated contributions into token payouts.

The paper motivates contribution evaluation with incentive allocation ("a fair
reward based on their contributions").  This contract closes that loop: given a
reward pool, it pays each owner proportionally to its positive accumulated
Shapley value (owners with non-positive contributions receive nothing), and it
keeps auditable per-owner balances.
"""

from __future__ import annotations

from typing import Any

from repro.blockchain.contracts.base import Contract, ContractContext, contract_method
from repro.blockchain.contracts.contribution import read_total_contributions
from repro.exceptions import ContractStateError

CONTRACT_NAME = "reward"


class RewardContract(Contract):
    """Proportional reward distribution over accumulated contributions."""

    name = CONTRACT_NAME

    @contract_method
    def distribute(self, ctx: ContractContext, reward_pool: float, label: str = "final") -> dict[str, Any]:
        """Distribute ``reward_pool`` tokens proportionally to positive contributions.

        A distribution label can only be used once, so re-running the protocol's
        final step cannot double-pay.  If every contribution is non-positive the
        pool is split equally (the degenerate σ = 0 case where all owners are
        interchangeable).
        """
        if reward_pool < 0:
            raise ContractStateError("reward_pool must be non-negative")
        if ctx.contains(f"distribution/{label}"):
            raise ContractStateError(f"distribution {label!r} has already been executed")
        totals = read_total_contributions(ctx)
        if not totals:
            raise ContractStateError("there are no contributions to reward")

        positive = {owner: max(value, 0.0) for owner, value in totals.items()}
        weight_sum = sum(positive.values())
        if weight_sum <= 0.0:
            payouts = {owner: reward_pool / len(totals) for owner in totals}
        else:
            payouts = {owner: reward_pool * weight / weight_sum for owner, weight in positive.items()}

        balances = ctx.get("balances", {})
        for owner, payout in payouts.items():
            balances[owner] = float(balances.get(owner, 0.0) + payout)
        ctx.set("balances", balances)
        ctx.set(
            f"distribution/{label}",
            {"reward_pool": float(reward_pool), "payouts": {k: float(v) for k, v in payouts.items()}},
        )
        ctx.emit("RewardsDistributed", label=label, reward_pool=float(reward_pool), by=ctx.sender)
        return {"status": "distributed", "payouts": payouts}

    @contract_method
    def get_balances(self, ctx: ContractContext) -> dict[str, float]:
        """Current token balance per owner."""
        return ctx.get("balances", {})

    @contract_method
    def get_distribution(self, ctx: ContractContext, label: str = "final") -> dict[str, Any] | None:
        """A specific distribution record (None if that label was never executed)."""
        return ctx.get(f"distribution/{label}")
