"""Smart contracts and the deterministic runtime that executes them.

Contracts are plain Python classes registered with the
:class:`~repro.blockchain.contracts.base.ContractRuntime`.  A contract method
receives a :class:`~repro.blockchain.contracts.base.ContractContext` giving it
namespaced access to the world state, the sender identity, the block height,
and an event emitter.  Execution is purely a function of (state, transaction),
which is what allows every miner to verify a leader's proposal by re-execution.

Contracts provided:

* :class:`~repro.blockchain.contracts.registry.ParticipantRegistryContract` —
  participants register their Diffie–Hellman public keys and the agreed
  protocol parameters (FL, secure aggregation, evaluation) are pinned on chain.
* :class:`~repro.blockchain.contracts.fl_training.FLTrainingContract` — collects
  masked updates per round, performs the secure group aggregation, and publishes
  group and global models.
* :class:`~repro.blockchain.contracts.contribution.ContributionContract` —
  implements Algorithm 1 (GroupSV) on-chain: builds coalition models from the
  published group models and assigns per-round Shapley values to every owner.
* :class:`~repro.blockchain.contracts.reward.RewardContract` — converts final
  contributions into token rewards.
"""

from repro.blockchain.contracts.base import Contract, ContractContext, ContractRuntime, contract_method
from repro.blockchain.contracts.contribution import ContributionContract
from repro.blockchain.contracts.fl_training import FLTrainingContract
from repro.blockchain.contracts.registry import ParticipantRegistryContract
from repro.blockchain.contracts.reward import RewardContract

__all__ = [
    "Contract",
    "ContractContext",
    "ContractRuntime",
    "contract_method",
    "ContributionContract",
    "FLTrainingContract",
    "ParticipantRegistryContract",
    "RewardContract",
]
