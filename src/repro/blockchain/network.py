"""A simulated peer-to-peer network.

Messages (transactions, block proposals, votes) are delivered in-process and in
deterministic order.  The network records simple statistics — message counts
and payload bytes — which the throughput analysis (Experiment E5) uses to model
blockchain overhead as a function of cohort size and model dimension.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import BlockchainError
from repro.utils.serialization import canonical_dumps


@dataclass
class NetworkStats:
    """Aggregate traffic statistics for a simulated network."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_topic: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_topic: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, topic: str, payload_bytes: int, recipients: int) -> None:
        """Account for one logical broadcast reaching ``recipients`` peers."""
        self.messages_sent += recipients
        self.bytes_sent += payload_bytes * recipients
        self.messages_by_topic[topic] += recipients
        self.bytes_by_topic[topic] += payload_bytes * recipients

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for reports."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_by_topic": dict(self.messages_by_topic),
            "bytes_by_topic": dict(self.bytes_by_topic),
        }


class Network:
    """An in-process broadcast network connecting miner nodes.

    Nodes register a handler per topic; ``broadcast`` synchronously invokes the
    handler of every *other* registered node in sorted node-id order, which
    keeps simulations deterministic.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, dict[str, Callable[[str, Any], Any]]] = defaultdict(dict)
        self._node_ids: set[str] = set()
        self.stats = NetworkStats()

    def join(self, node_id: str) -> None:
        """Register a node on the network."""
        if node_id in self._node_ids:
            raise BlockchainError(f"node {node_id!r} already joined the network")
        self._node_ids.add(node_id)

    def subscribe(self, node_id: str, topic: str, handler: Callable[[str, Any], Any]) -> None:
        """Register ``handler(sender_id, payload)`` for a topic on behalf of a node."""
        if node_id not in self._node_ids:
            raise BlockchainError(f"node {node_id!r} must join before subscribing")
        self._handlers[topic][node_id] = handler

    def peers(self) -> list[str]:
        """All node ids on the network, sorted."""
        return sorted(self._node_ids)

    def _payload_size(self, payload: Any) -> int:
        try:
            return len(canonical_dumps(payload))
        except Exception:  # noqa: BLE001 - size accounting must never break delivery
            return len(repr(payload))

    def broadcast(self, sender_id: str, topic: str, payload: Any) -> dict[str, Any]:
        """Deliver ``payload`` to every other subscriber of ``topic``.

        Returns the per-recipient handler results (used for vote collection).
        """
        if sender_id not in self._node_ids:
            raise BlockchainError(f"unknown sender {sender_id!r}")
        handlers = self._handlers.get(topic, {})
        recipients = [node_id for node_id in sorted(handlers) if node_id != sender_id]
        self.stats.record(topic, self._payload_size(payload), len(recipients))
        results = {}
        for node_id in recipients:
            results[node_id] = handlers[node_id](sender_id, payload)
        return results

    def send(self, sender_id: str, recipient_id: str, topic: str, payload: Any) -> Any:
        """Point-to-point delivery to a single node."""
        if sender_id not in self._node_ids:
            raise BlockchainError(f"unknown sender {sender_id!r}")
        handlers = self._handlers.get(topic, {})
        if recipient_id not in handlers:
            raise BlockchainError(f"node {recipient_id!r} is not subscribed to {topic!r}")
        self.stats.record(topic, self._payload_size(payload), 1)
        return handlers[recipient_id](sender_id, payload)
