"""A simulated peer-to-peer network.

Messages (transactions, block proposals, votes) are delivered in-process and in
deterministic order.  The network records simple statistics — message counts
and payload bytes — which the throughput analysis (Experiment E5) uses to model
blockchain overhead as a function of cohort size and model dimension.

*How* each payload crosses the wire is delegated to a pluggable
:class:`~repro.blockchain.transport.Transport`: the default
:class:`~repro.blockchain.transport.DeterministicTransport` reproduces the
historical loss-free sorted-order loop byte for byte, while
:class:`~repro.blockchain.transport.FaultInjectingTransport` injects seeded
partitions, loss, duplication, and latency for robustness scenarios.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Callable

from repro.blockchain.transport import (
    DELIVERED,
    DROPPED,
    ERROR,
    PARTITIONED,
    TIMEOUT,
    BroadcastReport,
    Delivery,
    DeterministicTransport,
    Transport,
)
from repro.exceptions import BlockchainError
from repro.utils.serialization import canonical_dumps

#: Per-topic delivery-outcome counters tracked beyond the legacy traffic stats.
DELIVERY_COUNTERS = (
    "attempted",
    "delivered",
    "dropped",
    "partitioned",
    "timed_out",
    "errors",
    "duplicated",
    "retries",
)

_STATUS_TO_COUNTER = {
    DELIVERED: "delivered",
    DROPPED: "dropped",
    PARTITIONED: "partitioned",
    TIMEOUT: "timed_out",
    ERROR: "errors",
}


def _empty_counters() -> dict[str, int]:
    return {name: 0 for name in DELIVERY_COUNTERS}


class _PeerCounters:
    """One recorder's private slice of the traffic statistics.

    Each recording peer (sender) owns its own bucket, so concurrent recorders
    never share a counter dict; buckets are merged at report time.  Mutation
    still happens under the owning :class:`NetworkStats` lock because one peer
    may record from several threads at once (a retry sweep racing a
    handler-driven resync under the async transport).
    """

    __slots__ = ("messages_sent", "bytes_sent", "messages_by_topic",
                 "bytes_by_topic", "delivery_by_topic")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_by_topic: dict[str, int] = defaultdict(int)
        self.bytes_by_topic: dict[str, int] = defaultdict(int)
        self.delivery_by_topic: dict[str, dict[str, int]] = defaultdict(_empty_counters)


class NetworkStats:
    """Aggregate traffic statistics for a simulated network.

    Beyond the legacy traffic totals (messages/bytes, overall and per topic),
    the stats distinguish delivery *outcomes* per topic — attempted vs
    delivered vs dropped/partitioned/timed-out/errored, plus duplicate copies
    and retry attempts — which is what the fault scenarios and the CLI
    delivery table report on.

    Counters are kept in per-peer buckets (the ``peer`` argument of the
    ``record*`` methods names the recording sender; the synchronous
    single-network simulation records everything under one anonymous bucket)
    and merged at report time.  Recording takes a lock, because under the
    async transport one peer records from several threads concurrently — an
    unguarded ``dict[int] += 1`` there loses counts and breaks the
    ``attempted == delivered + dropped + partitioned + timed_out + errors``
    accounting invariant the delivery reports are trusted for.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._peers: dict[str, _PeerCounters] = {}

    # -- pickling: the lock must not cross process boundaries ------------

    def __getstate__(self) -> dict[str, Any]:
        return {"peers": self._peers}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._peers = state["peers"]

    def _bucket(self, peer: str) -> _PeerCounters:
        bucket = self._peers.get(peer)
        if bucket is None:
            bucket = self._peers.setdefault(peer, _PeerCounters())
        return bucket

    # -- recording -------------------------------------------------------

    def record(self, topic: str, payload_bytes: int, recipients: int, peer: str = "") -> None:
        """Account for one logical broadcast reaching ``recipients`` peers."""
        with self._lock:
            bucket = self._bucket(peer)
            bucket.messages_sent += recipients
            bucket.bytes_sent += payload_bytes * recipients
            bucket.messages_by_topic[topic] += recipients
            bucket.bytes_by_topic[topic] += payload_bytes * recipients
            bucket.delivery_by_topic[topic]["attempted"] += recipients

    def record_outcome(self, topic: str, delivery: Delivery, peer: str = "") -> None:
        """Account for one per-recipient delivery outcome."""
        with self._lock:
            counters = self._bucket(peer).delivery_by_topic[topic]
            counters[_STATUS_TO_COUNTER[delivery.status]] += 1
            counters["duplicated"] += delivery.duplicates

    def record_retries(self, topic: str, count: int, peer: str = "") -> None:
        """Account for ``count`` retry sends on a topic (also counted as attempts)."""
        with self._lock:
            self._bucket(peer).delivery_by_topic[topic]["retries"] += count

    # -- merged views (the legacy read surface) --------------------------

    @property
    def messages_sent(self) -> int:
        with self._lock:
            return sum(bucket.messages_sent for bucket in self._peers.values())

    @property
    def bytes_sent(self) -> int:
        with self._lock:
            return sum(bucket.bytes_sent for bucket in self._peers.values())

    def _merge_topic_counts(self, attr: str) -> dict[str, int]:
        merged: dict[str, int] = defaultdict(int)
        with self._lock:
            for bucket in self._peers.values():
                for topic, value in getattr(bucket, attr).items():
                    merged[topic] += value
        return dict(merged)

    @property
    def messages_by_topic(self) -> dict[str, int]:
        return self._merge_topic_counts("messages_by_topic")

    @property
    def bytes_by_topic(self) -> dict[str, int]:
        return self._merge_topic_counts("bytes_by_topic")

    @property
    def delivery_by_topic(self) -> dict[str, dict[str, int]]:
        """Per-topic outcome counters, merged across all recording peers."""
        merged: dict[str, dict[str, int]] = defaultdict(_empty_counters)
        with self._lock:
            for bucket in self._peers.values():
                for topic, counters in bucket.delivery_by_topic.items():
                    target = merged[topic]
                    for name, value in counters.items():
                        target[name] += value
        return dict(merged)

    def delivery_report(self) -> dict[str, Any]:
        """Outcome counters, per topic and totalled (merged across peers)."""
        totals = _empty_counters()
        by_topic = {}
        merged = self.delivery_by_topic
        for topic in sorted(merged):
            counters = dict(merged[topic])
            by_topic[topic] = counters
            for name, value in counters.items():
                totals[name] += value
        return {"totals": totals, "by_topic": by_topic}

    def per_peer_report(self) -> dict[str, dict[str, Any]]:
        """Each recording peer's own delivery slice (what the swarm supervisor collects)."""
        report: dict[str, dict[str, Any]] = {}
        with self._lock:
            for peer in sorted(self._peers):
                bucket = self._peers[peer]
                report[peer] = {
                    "messages_sent": bucket.messages_sent,
                    "bytes_sent": bucket.bytes_sent,
                    "delivery_by_topic": {
                        topic: dict(counters)
                        for topic, counters in sorted(bucket.delivery_by_topic.items())
                    },
                }
        return report

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for reports."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_by_topic": dict(self.messages_by_topic),
            "bytes_by_topic": dict(self.bytes_by_topic),
            "delivery": self.delivery_report(),
            "per_peer": self.per_peer_report(),
        }


def delivery_report_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """The delivery activity between two :meth:`NetworkStats.delivery_report` snapshots."""
    totals = {
        name: after["totals"].get(name, 0) - before["totals"].get(name, 0)
        for name in DELIVERY_COUNTERS
    }
    by_topic: dict[str, dict[str, int]] = {}
    for topic, counters in after["by_topic"].items():
        prior = before["by_topic"].get(topic, {})
        delta = {name: counters.get(name, 0) - prior.get(name, 0) for name in DELIVERY_COUNTERS}
        if any(delta.values()):
            by_topic[topic] = delta
    return {"totals": totals, "by_topic": by_topic}


class Network:
    """An in-process broadcast network connecting miner nodes.

    Nodes register a handler per topic; ``broadcast`` synchronously invokes the
    handler of every *other* registered node through the installed transport —
    in sorted node-id order under the default deterministic transport, which
    keeps simulations byte-identical to the historical network.
    """

    def __init__(self, transport: Transport | None = None) -> None:
        self._handlers: dict[str, dict[str, Callable[[str, Any], Any]]] = defaultdict(dict)
        self._node_ids: set[str] = set()
        self.stats = NetworkStats()
        self.transport: Transport = transport or DeterministicTransport()

    def install_transport(self, transport: Transport) -> Transport:
        """Swap the delivery layer (e.g. to start injecting faults mid-run)."""
        self.transport = transport
        return transport

    @property
    def faulty(self) -> bool:
        """Whether deliveries can currently fail (drives retry/failover paths)."""
        return self.transport.faulty

    def begin_round(self, label: Any) -> None:
        """Advance the transport's simulated clock by one round attempt."""
        self.transport.begin_round(label)

    def join(self, node_id: str) -> None:
        """Register a node on the network."""
        if node_id in self._node_ids:
            raise BlockchainError(f"node {node_id!r} already joined the network")
        self._node_ids.add(node_id)

    def subscribe(self, node_id: str, topic: str, handler: Callable[[str, Any], Any]) -> None:
        """Register ``handler(sender_id, payload)`` for a topic on behalf of a node."""
        if node_id not in self._node_ids:
            raise BlockchainError(f"node {node_id!r} must join before subscribing")
        self._handlers[topic][node_id] = handler

    def peers(self) -> list[str]:
        """All node ids on the network, sorted."""
        return sorted(self._node_ids)

    def handler_for(self, node_id: str, topic: str) -> Callable[[str, Any], Any]:
        """The handler a node registered for a topic (the swarm server's dispatch path)."""
        handler = self._handlers.get(topic, {}).get(node_id)
        if handler is None:
            raise BlockchainError(f"node {node_id!r} is not subscribed to {topic!r}")
        return handler

    def _payload_size(self, payload: Any) -> int:
        try:
            return len(canonical_dumps(payload))
        except Exception:  # noqa: BLE001 - size accounting must never break delivery
            return len(repr(payload))

    def broadcast_detailed(self, sender_id: str, topic: str, payload: Any) -> BroadcastReport:
        """Deliver ``payload`` to every other subscriber; full per-recipient report."""
        if sender_id not in self._node_ids:
            raise BlockchainError(f"unknown sender {sender_id!r}")
        handlers = {
            node_id: handler
            for node_id, handler in self._handlers.get(topic, {}).items()
            if node_id != sender_id
        }
        self.stats.record(topic, self._payload_size(payload), len(handlers), peer=sender_id)
        return self.transport.deliver_broadcast(sender_id, topic, payload, handlers, self.stats)

    def broadcast(self, sender_id: str, topic: str, payload: Any) -> dict[str, Any]:
        """Deliver ``payload`` to every other subscriber of ``topic``.

        Returns the per-recipient handler results (used for vote collection).
        A recipient whose handler raised appears as a
        :class:`~repro.blockchain.transport.HandlerFailure` instead of aborting
        delivery to the remaining recipients mid-loop.
        """
        return self.broadcast_detailed(sender_id, topic, payload).results()

    def send_detailed(
        self, sender_id: str, recipient_id: str, topic: str, payload: Any
    ) -> Delivery:
        """Point-to-point delivery to a single node; full delivery outcome."""
        if sender_id not in self._node_ids:
            raise BlockchainError(f"unknown sender {sender_id!r}")
        handlers = self._handlers.get(topic, {})
        if recipient_id not in handlers:
            raise BlockchainError(f"node {recipient_id!r} is not subscribed to {topic!r}")
        self.stats.record(topic, self._payload_size(payload), 1, peer=sender_id)
        return self.transport.deliver_send(
            sender_id, recipient_id, topic, payload, handlers[recipient_id], self.stats
        )

    def send(self, sender_id: str, recipient_id: str, topic: str, payload: Any) -> Any:
        """Point-to-point delivery to a single node (handler result or raise)."""
        delivery = self.send_detailed(sender_id, recipient_id, topic, payload)
        if delivery.status == ERROR and delivery.exception is not None:
            raise delivery.exception
        if delivery.status != DELIVERED:
            raise BlockchainError(
                f"message to {recipient_id!r} on {topic!r} not delivered "
                f"({delivery.status}): {delivery.error}"
            )
        return delivery.result
