"""An asyncio miner swarm: N peer processes behind the ``AsyncTransport`` seam.

Each peer is a full OS process (``multiprocessing`` spawn) running one
:class:`~repro.blockchain.node.MinerNode` replica: its own chain (optionally
durable via the SQLite :class:`~repro.blockchain.storage.StorageBackend`),
mempool, and an :class:`~repro.blockchain.transport.AsyncTransport` serving
length-prefixed frames on a Unix socket.  The :class:`SwarmSupervisor` spawns
the peers, drives consensus rounds in lockstep over a control channel (the
same frame protocol, ``kind="ctrl"``), monitors liveness, kills and restarts
peers for fault drills, and collects per-peer delivery reports.

Determinism is the point: the workload (:func:`make_round_transactions`) is a
pure function of the config seed, leaders rotate round-robin, block timestamps
are logical (parent + 1), and the mempool orders transactions FIFO — so a
swarm run's final head hash is byte-identical to the same config executed
single-process under :class:`~repro.blockchain.transport.DeterministicTransport`
(:func:`run_reference_workload`), which is what the concurrency-determinism
suite pins.  Under a seeded :class:`~repro.blockchain.transport.FaultPlan` the
supervisor retries rejected rounds until the partition heals and resyncs
lagging replicas, so the *healed* swarm still converges to that same head.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import ConsensusEngine
from repro.blockchain.contracts.base import (
    Contract,
    ContractContext,
    ContractRuntime,
    contract_method,
)
from repro.blockchain.network import Network
from repro.blockchain.node import (
    TOPIC_COMMIT,
    TOPIC_PROPOSAL,
    TOPIC_SYNC,
    TOPIC_TRANSACTIONS,
    MinerNode,
)
from repro.blockchain.storage import open_backend
from repro.blockchain.transaction import Transaction
from repro.blockchain.transport import (
    AsyncTransport,
    FaultPlan,
    read_frame_sync,
    write_frame_sync,
)
from repro.exceptions import BlockchainError, ConsensusError

SWARM_TOPICS = (TOPIC_TRANSACTIONS, TOPIC_PROPOSAL, TOPIC_COMMIT, TOPIC_SYNC)


# ----------------------------------------------------------------------
# Configuration and deterministic workload
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SwarmConfig:
    """Everything a swarm run depends on; picklable (crosses the spawn boundary).

    The pair (``seed``, ``rounds``, ``txs_per_round``, ``peers``,
    ``state_root_version``) fully determines the committed chain; the
    remaining knobs shape wall-clock behaviour (timeouts, queues) and fault
    injection without affecting block bytes.
    """

    peers: int = 8
    rounds: int = 3
    txs_per_round: int = 2
    seed: int = 7
    state_root_version: int = 1
    fault_plan: FaultPlan | None = None
    use_storage: bool = True
    request_timeout: float = 3.0
    queue_size: int = 32
    tick_seconds: float = 0.0
    max_round_attempts: int = 8

    def __post_init__(self) -> None:
        if self.peers < 1:
            raise BlockchainError("SwarmConfig.peers must be at least 1")
        if self.rounds < 0 or self.txs_per_round < 1:
            raise BlockchainError("SwarmConfig needs rounds >= 0 and txs_per_round >= 1")
        if self.max_round_attempts < 1:
            raise BlockchainError("SwarmConfig.max_round_attempts must be at least 1")

    def peer_ids(self) -> list[str]:
        return [f"miner-{index:03d}" for index in range(self.peers)]

    def leader_for(self, round_index: int) -> str:
        """Round-robin leader schedule (same in the swarm and the reference run)."""
        return self.peer_ids()[round_index % self.peers]


class SwarmLedgerContract(Contract):
    """The swarm workload contract: per-account balances credited each round."""

    name = "ledger"

    @contract_method
    def credit(self, ctx: ContractContext, account: str, amount: int) -> int:
        if amount < 0:
            raise BlockchainError("credit amount must be non-negative")
        balance = ctx.get(f"balance:{account}", 0) + int(amount)
        ctx.set(f"balance:{account}", balance)
        ctx.emit("Credited", account=account, amount=int(amount), balance=balance)
        return balance


def swarm_runtime_factory() -> ContractRuntime:
    """Runtime with the swarm ledger registered (module-level: spawn-picklable)."""
    runtime = ContractRuntime()
    runtime.register(SwarmLedgerContract())
    return runtime


def make_round_transactions(config: SwarmConfig, round_index: int) -> list[Transaction]:
    """The transactions every replica expects in round ``round_index``.

    One transaction per workload owner per round, amounts hash-derived from
    the config seed — a pure function, so the supervisor, any retry attempt,
    and the single-process reference run all submit identical transactions
    (the mempool deduplicates resubmissions by transaction hash).
    """
    transactions = []
    for owner in range(config.txs_per_round):
        digest = hashlib.sha256(
            f"swarm-tx|{config.seed}|{round_index}|{owner}".encode()
        ).digest()
        amount = int.from_bytes(digest[:4], "big") % 1000
        transactions.append(
            Transaction(
                sender=f"owner-{owner:02d}",
                contract="ledger",
                method="credit",
                args={"account": f"acct-{owner % 3}", "amount": amount},
                nonce=round_index,
            )
        )
    return transactions


def run_reference_workload(config: SwarmConfig) -> dict[str, Any]:
    """The same workload, single-process, under ``DeterministicTransport``.

    This is the parity oracle: the swarm's final head must be byte-identical
    to this run's.
    """
    network = Network()
    nodes = [
        MinerNode(
            peer_id, network, swarm_runtime_factory,
            state_root_version=config.state_root_version,
        )
        for peer_id in config.peer_ids()
    ]
    by_id = {node.node_id: node for node in nodes}
    engine = ConsensusEngine()
    for round_index in range(config.rounds):
        network.begin_round(f"round-{round_index}")
        leader = by_id[config.leader_for(round_index)]
        for tx in make_round_transactions(config, round_index):
            leader.submit_transaction(tx)
        leader.run_consensus_round(engine)
    heads = {node.node_id: node.chain.head.block_hash for node in nodes}
    if len(set(heads.values())) != 1:
        raise BlockchainError(f"reference run diverged: {heads}")
    return {
        "head": nodes[0].chain.head.block_hash,
        "height": nodes[0].chain.height,
        "chain": nodes[0].chain,
    }


def audit_swarm_chain(chain: Blockchain) -> dict[str, Any]:
    """Audit one swarm replica: structure, full replay, and version roots.

    Raises on any mismatch; returns a summary for reports.
    """
    chain.validate_chain()
    replayed = chain.replay()
    if replayed.head.block_hash != chain.head.block_hash:
        raise BlockchainError(
            f"replay head {replayed.head.block_hash} != committed {chain.head.block_hash}"
        )
    verified = chain.verify_version_roots()  # raises on any root mismatch
    return {
        "height": chain.height,
        "head": chain.head.block_hash,
        "transactions": chain.total_transactions(),
        "verified_versions": verified,
    }


# ----------------------------------------------------------------------
# Peer process
# ----------------------------------------------------------------------

def _remote_proxy_handler(sender_id: str, payload: Any) -> None:
    """Placeholder registered for remote peers on each local Network.

    It makes remote peers visible to membership/subscription checks
    (``Network.peers``, attempted-delivery counts, resync target discovery);
    the async transport routes their deliveries over the wire, so invoking
    this locally is always a bug.
    """
    raise BlockchainError("remote proxy handler invoked locally")


class SwarmPeer:
    """One miner peer process: replica + transport server + control endpoint.

    All node-state mutation (inbound handlers and supervisor ctrl commands)
    is serialized under one re-entrant lock; cross-peer waits that could
    cycle (A mid-round waiting on B while B's handler waits on A) resolve via
    the transport's wall-clock timeouts, which the quorum path counts as
    abstains.
    """

    def __init__(
        self,
        config: SwarmConfig,
        node_id: str,
        peer_table: dict[str, str],
        store_path: str | None,
    ) -> None:
        self.config = config
        self.node_id = node_id
        self.restored = False
        socket_path = peer_table[node_id]
        if os.path.exists(socket_path):
            os.unlink(socket_path)  # a restarted peer reclaims its address
        self.transport = AsyncTransport(
            node_id,
            peer_table,
            plan=config.fault_plan,
            request_timeout=config.request_timeout,
            queue_size=config.queue_size,
            tick_seconds=config.tick_seconds,
        )
        self.network = Network(self.transport)
        self.node = MinerNode(
            node_id, self.network, swarm_runtime_factory,
            state_root_version=config.state_root_version,
        )
        if store_path is not None:
            self.restored = self.node.chain.attach_storage(open_backend(f"sqlite:{store_path}"))
        for peer_id in sorted(peer_table):
            if peer_id == node_id:
                continue
            self.network.join(peer_id)
            for topic in SWARM_TOPICS:
                self.network.subscribe(peer_id, topic, _remote_proxy_handler)
        self.engine = ConsensusEngine()
        self._lock = threading.RLock()
        self._shutdown = threading.Event()
        self.transport.serve(self._dispatch, self._ctrl)

    # -- inbound peer traffic -------------------------------------------

    def _dispatch(self, sender_id: str, topic: str, payload: Any) -> Any:
        handler = self.network.handler_for(self.node_id, topic)
        with self._lock:
            return handler(sender_id, payload)

    # -- supervisor control channel -------------------------------------

    def _ctrl(self, command: str, args: Any) -> Any:
        args = args or {}
        if command == "ping":
            return {"node": self.node_id, "height": self.node.chain.height,
                    "restored": self.restored}
        if command == "tick":
            self.network.begin_round(args.get("label"))
            return {"tick": self.transport.tick}
        if command == "submit":
            with self._lock:
                reports = [
                    self.node.submit_transaction(tx).undelivered()
                    for tx in args["transactions"]
                ]
            return {"undelivered": sorted({peer for report in reports for peer in report})}
        if command == "round":
            with self._lock:
                result = self.node.run_consensus_round(self.engine)
            return {
                "accepted": result.accepted,
                "height": self.node.chain.height,
                "head": self.node.chain.head.block_hash,
                "abstains": result.abstain_count,
            }
        if command == "resync":
            with self._lock:
                adopted = self.node.try_resync()
            return {"resynced": adopted, "height": self.node.chain.height,
                    "head": self.node.chain.head.block_hash}
        if command == "head":
            return {"height": self.node.chain.height,
                    "head": self.node.chain.head.block_hash}
        if command == "heal":
            self.transport.heal_all()
            return {"healed": dict(self.transport.healed)}
        if command == "report":
            return {
                "node": self.node_id,
                "height": self.node.chain.height,
                "head": self.node.chain.head.block_hash,
                "restored": self.restored,
                "resyncs": list(self.node.resyncs),
                "delivery": self.network.stats.delivery_report(),
                "stats": self.network.stats.per_peer_report(),
                "transport": self.transport.transport_report(),
            }
        if command == "chain":
            with self._lock:
                return self.node.chain
        if command == "shutdown":
            self._shutdown.set()
            return {"node": self.node_id, "stopping": True}
        raise BlockchainError(f"unknown ctrl command {command!r}")

    # -- lifecycle -------------------------------------------------------

    def serve_until_shutdown(self) -> None:
        self._shutdown.wait()
        # Give the shutdown ctrl response a moment to flush before teardown.
        time.sleep(0.05)
        self.transport.stop()
        if self.node.chain.storage is not None:
            self.node.chain.storage.close()


def _peer_main(
    config: SwarmConfig, node_id: str, peer_table: dict[str, str], store_path: str | None
) -> None:
    """Entry point of a spawned peer process."""
    peer = SwarmPeer(config, node_id, peer_table, store_path)
    peer.serve_until_shutdown()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------

@dataclass
class PeerHandle:
    """The supervisor's view of one peer process."""

    node_id: str
    socket_path: str
    store_path: str | None
    process: Any = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class SwarmSupervisor:
    """Launches, drives, and tears down an N-peer asyncio miner swarm.

    The supervisor is a plain synchronous client of the peers' frame servers:
    every command opens a fresh Unix-socket connection, sends one
    ``kind="ctrl"`` frame, and reads one response — no event loop on this
    side, so it composes with pytest and the CLI without ceremony.  Rounds
    are driven in lockstep (tick everyone, then ask the round's leader to
    submit + propose), failed rounds are retried after resyncing lagging
    replicas, and kill/restart drills reuse each peer's SQLite store for
    crash-consistent recovery plus ``catch_up_from`` for the tail.
    """

    def __init__(self, config: SwarmConfig, workdir: str | None = None) -> None:
        self.config = config
        # Unix socket paths are length-limited (~108 bytes); a dedicated
        # short-lived directory under the default tmp root stays safely under.
        self._tmpdir = tempfile.TemporaryDirectory(prefix="swarm-") if workdir is None else None
        self.workdir = workdir if workdir is not None else self._tmpdir.name
        self._ctx = multiprocessing.get_context("spawn")
        self.handles: dict[str, PeerHandle] = {}
        for index, peer_id in enumerate(config.peer_ids()):
            self.handles[peer_id] = PeerHandle(
                node_id=peer_id,
                socket_path=os.path.join(self.workdir, f"p{index:03d}.sock"),
                store_path=(
                    os.path.join(self.workdir, f"p{index:03d}.db")
                    if config.use_storage else None
                ),
            )
        self.peer_table = {
            peer_id: handle.socket_path for peer_id, handle in self.handles.items()
        }
        self._pool = ThreadPoolExecutor(
            max_workers=min(32, config.peers), thread_name_prefix="swarm-ctrl"
        )
        #: Per-round commit log: {"round", "leader", "attempts", "head"}.
        self.round_log: list[dict[str, Any]] = []

    # -- process lifecycle ----------------------------------------------

    def start(self, ready_timeout: float = 60.0) -> None:
        for peer_id in self.handles:
            self._spawn(peer_id)
        self._wait_ready(list(self.handles), ready_timeout)

    def _spawn(self, peer_id: str) -> None:
        handle = self.handles[peer_id]
        handle.process = self._ctx.Process(
            target=_peer_main,
            args=(self.config, peer_id, self.peer_table, handle.store_path),
            name=peer_id,
            daemon=True,
        )
        handle.process.start()

    def _wait_ready(self, peer_ids: list[str], timeout: float) -> None:
        deadline = time.monotonic() + timeout
        pending = set(peer_ids)
        while pending:
            for peer_id in sorted(pending):
                try:
                    self.ctrl(peer_id, "ping", timeout=2.0)
                    pending.discard(peer_id)
                except (OSError, BlockchainError):
                    if not self.handles[peer_id].alive:
                        raise BlockchainError(f"peer {peer_id!r} died during startup")
            if pending:
                if time.monotonic() > deadline:
                    raise BlockchainError(f"peers never became ready: {sorted(pending)}")
                time.sleep(0.05)

    def alive_peers(self) -> list[str]:
        return sorted(pid for pid, handle in self.handles.items() if handle.alive)

    def kill_peer(self, peer_id: str) -> None:
        """Hard-kill one peer (no clean shutdown — the crash drill)."""
        handle = self.handles[peer_id]
        if handle.process is not None:
            handle.process.terminate()
            handle.process.join(timeout=10)
            handle.process = None
        if os.path.exists(handle.socket_path):
            os.unlink(handle.socket_path)  # connects fail fast instead of hanging

    def restart_peer(self, peer_id: str, ready_timeout: float = 30.0) -> dict[str, Any]:
        """Respawn a killed peer; its SQLite store restores the committed prefix
        and a targeted resync fills whatever the swarm committed since."""
        self._spawn(peer_id)
        self._wait_ready([peer_id], ready_timeout)
        return self.ctrl(peer_id, "resync")

    def stop(self) -> None:
        for peer_id in self.alive_peers():
            try:
                self.ctrl(peer_id, "shutdown", timeout=5.0)
            except (OSError, BlockchainError):
                pass
        for handle in self.handles.values():
            if handle.process is not None:
                handle.process.join(timeout=10)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5)
                handle.process = None
        self._pool.shutdown(wait=False)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    def __enter__(self) -> "SwarmSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- control channel -------------------------------------------------

    def ctrl(
        self, peer_id: str, command: str, args: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> Any:
        """One synchronous control round-trip to a peer."""
        path = self.peer_table[peer_id]
        budget = timeout if timeout is not None else self.config.request_timeout * 8 + 60
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
            client.settimeout(budget)
            client.connect(path)
            write_frame_sync(client, {"kind": "ctrl", "id": 0, "command": command, "args": args})
            response = read_frame_sync(client)
        if response is None:
            raise BlockchainError(f"peer {peer_id!r} closed the ctrl connection")
        if response.get("status") != "ok":
            raise BlockchainError(
                f"ctrl {command!r} on {peer_id!r} failed: {response.get('error')}"
            )
        return response.get("result")

    def broadcast_ctrl(
        self, command: str, args: dict[str, Any] | None = None,
        peers: list[str] | None = None, timeout: float | None = None,
    ) -> dict[str, Any]:
        """Run one ctrl command on many peers concurrently; exceptions are values."""
        targets = peers if peers is not None else self.alive_peers()
        futures = {
            peer_id: self._pool.submit(self.ctrl, peer_id, command, args, timeout)
            for peer_id in targets
        }
        results: dict[str, Any] = {}
        for peer_id, future in futures.items():
            try:
                results[peer_id] = future.result()
            except Exception as exc:  # noqa: BLE001 - a dead peer is data, not a crash
                results[peer_id] = BlockchainError(str(exc))
        return results

    # -- round driving ---------------------------------------------------

    def heads(self, peers: list[str] | None = None) -> dict[str, dict[str, Any]]:
        return {
            peer_id: result
            for peer_id, result in self.broadcast_ctrl("head", peers=peers).items()
            if not isinstance(result, Exception)
        }

    def resync_lagging(self) -> list[str]:
        """Targeted recovery: resync only the replicas behind the tallest head."""
        heads = self.heads()
        if not heads:
            return []
        top = max(entry["height"] for entry in heads.values())
        lagging = sorted(pid for pid, entry in heads.items() if entry["height"] < top)
        for peer_id in lagging:
            self.ctrl(peer_id, "resync")
        return lagging

    def run_round(self, round_index: int, allow_leader_fallback: bool = False) -> dict[str, Any]:
        """Drive one consensus round to commit, retrying through fault windows.

        Every attempt advances every peer's transport tick first (that is
        what schedules plan partitions and their heals), then the round's
        leader submits the workload and proposes.  A rejected or unreachable
        attempt triggers a targeted resync sweep and another attempt; with
        ``allow_leader_fallback`` (the kill/restart soak) a dead scheduled
        leader is replaced by the next alive peer, which trades reference
        parity for liveness.
        """
        scheduled = self.config.leader_for(round_index)
        transactions = make_round_transactions(self.config, round_index)
        failures: list[str] = []
        for attempt in range(self.config.max_round_attempts):
            label = f"round-{round_index}/attempt-{attempt}"
            self.broadcast_ctrl("tick", {"label": label})
            leader = scheduled
            if not self.handles[leader].alive:
                if not allow_leader_fallback:
                    raise BlockchainError(
                        f"round {round_index}: scheduled leader {leader!r} is dead"
                    )
                alive = self.alive_peers()
                if not alive:
                    raise BlockchainError("no alive peers left to lead")
                leader = alive[round_index % len(alive)]
            try:
                head = self.ctrl(leader, "head")
                if head["height"] >= round_index + 1:
                    # A previous attempt committed but its response was lost.
                    result = {"accepted": True, **head}
                else:
                    if head["height"] < round_index:
                        self.ctrl(leader, "resync")
                    self.ctrl(leader, "submit", {"transactions": transactions})
                    result = self.ctrl(leader, "round")
                self.round_log.append(
                    {"round": round_index, "leader": leader, "attempts": attempt + 1,
                     "head": result["head"]}
                )
                return result
            except (OSError, BlockchainError) as exc:
                failures.append(f"attempt {attempt} via {leader}: {exc}")
                try:
                    self.resync_lagging()
                except (OSError, BlockchainError):
                    pass
        raise ConsensusError(
            f"round {round_index} failed after {self.config.max_round_attempts} attempts: "
            + "; ".join(failures[-3:])
        )

    def converge(self, sweeps: int = 10) -> dict[str, str]:
        """Resync until every alive replica reports the same head; return the heads.

        Each sweep also advances the shared tick clock: a replica stranded
        behind a scheduled partition (``heal_tick`` not yet reached because
        the majority committed every round on its first attempt) can only be
        resynced once time passes and the partition heals, so convergence
        *is* the passage of time for the fault schedule.
        """
        for sweep in range(sweeps):
            heads = self.heads()
            if heads and len({entry["head"] for entry in heads.values()}) == 1:
                return {pid: entry["head"] for pid, entry in heads.items()}
            self.broadcast_ctrl("tick", {"label": f"converge-{sweep}"})
            self.resync_lagging()
            time.sleep(0.05)
        heads = self.heads()
        raise BlockchainError(f"swarm did not converge: {heads}")

    def fetch_chain(self, peer_id: str) -> Blockchain:
        """Pull one replica's full chain (storage-detached) for local auditing."""
        chain = self.ctrl(peer_id, "chain")
        if not isinstance(chain, Blockchain):
            raise BlockchainError(f"peer {peer_id!r} returned {type(chain).__name__}")
        return chain

    def collect_reports(self) -> dict[str, Any]:
        return self.broadcast_ctrl("report")


def run_swarm_workload(
    config: SwarmConfig,
    kill_schedule: dict[int, list[str]] | None = None,
    restart_after: int = 1,
) -> dict[str, Any]:
    """Run the full swarm workload and return heads, reports, and the round log.

    ``kill_schedule`` maps a round index to peer ids hard-killed *before* that
    round runs; each killed peer is restarted ``restart_after`` rounds later
    (or at workload end), restoring from its SQLite store and resyncing the
    tail.  Used by the randomized soak test; plain runs pass no schedule.
    """
    kill_schedule = kill_schedule or {}
    pending_restart: dict[str, int] = {}
    supervisor = SwarmSupervisor(config)
    fallback = bool(kill_schedule)
    try:
        supervisor.start()
        for round_index in range(config.rounds):
            for peer_id in kill_schedule.get(round_index, ()):
                if supervisor.handles[peer_id].alive:
                    supervisor.kill_peer(peer_id)
                    pending_restart[peer_id] = round_index + restart_after
            due = [pid for pid, when in pending_restart.items() if when <= round_index]
            for peer_id in sorted(due):
                supervisor.restart_peer(peer_id)
                del pending_restart[peer_id]
            supervisor.run_round(round_index, allow_leader_fallback=fallback)
        for peer_id in sorted(pending_restart):
            supervisor.restart_peer(peer_id)
        heads = supervisor.converge()
        reports = supervisor.collect_reports()
        chain = supervisor.fetch_chain(sorted(heads)[0])
        audit = audit_swarm_chain(chain)
        return {
            "head": next(iter(heads.values())),
            "heads": heads,
            "height": chain.height,
            "audit": audit,
            "reports": reports,
            "round_log": list(supervisor.round_log),
        }
    finally:
        supervisor.stop()
