"""A deterministic, in-process blockchain with smart-contract support.

The paper's protocol is blockchain agnostic: it only needs (1) a leader that
proposes transactions, (2) miners that re-execute and verify the proposal, and
(3) transparent, replayable on-chain state.  This package provides exactly that
as an in-memory simulation:

* :mod:`repro.blockchain.transaction` / :mod:`repro.blockchain.block` — signed
  transactions, Merkle-rooted blocks.
* :mod:`repro.blockchain.state` — the versioned, Merkle-ized world state:
  journaled O(Δ) rollback, per-block historical views, and (with
  ``state_root_version=2``) per-entry inclusion proofs.
* :mod:`repro.blockchain.chain` — the ledger, validation, and replay.
* :mod:`repro.blockchain.contracts` — the deterministic contract runtime and the
  FL / secure-aggregation / contribution-evaluation contracts.
* :mod:`repro.blockchain.consensus` — proof-of-authority leader selection
  (static round-robin or the chain-state-derived epoch-authority schedule
  with view-change failover) and majority re-execution verification.
* :mod:`repro.blockchain.network` / :mod:`repro.blockchain.node` — a simulated
  P2P network of miner nodes.
* :mod:`repro.blockchain.transport` — pluggable delivery layers: the default
  deterministic transport (byte-identical to the historical network), a
  seeded fault-injecting transport (partitions, loss, duplication, latency)
  driven by a declarative :class:`~repro.blockchain.transport.FaultPlan`, and
  a real asyncio Unix-socket transport for multi-process swarms.
* :mod:`repro.blockchain.swarm` — the asyncio miner swarm: a supervisor that
  launches miner peers as OS processes over the async transport and verifies
  their converged head byte-identical to the deterministic reference.
"""

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import (
    ConsensusEngine,
    EpochAuthoritySchedule,
    RoundRobinLeaderSelector,
    VerificationResult,
    scheduled_proposer,
    verify_block_authority,
)
from repro.blockchain.mempool import Mempool
from repro.blockchain.merkle import MerkleTree
from repro.blockchain.network import Network, NetworkStats
from repro.blockchain.node import MinerNode
from repro.blockchain.state import StateProof, StateView, WorldState, verify_state_proof
from repro.blockchain.transaction import Transaction, TransactionReceipt
from repro.blockchain.swarm import (
    SwarmConfig,
    SwarmSupervisor,
    run_reference_workload,
    run_swarm_workload,
)
from repro.blockchain.transport import (
    AsyncTransport,
    BroadcastReport,
    Delivery,
    DeterministicTransport,
    FaultDecision,
    FaultInjectingTransport,
    FaultPlan,
    HandlerFailure,
    LinkFault,
    LinkFaultDecider,
    PartitionSpec,
    Transport,
)

__all__ = [
    "Block",
    "BlockHeader",
    "Blockchain",
    "ConsensusEngine",
    "EpochAuthoritySchedule",
    "RoundRobinLeaderSelector",
    "VerificationResult",
    "scheduled_proposer",
    "verify_block_authority",
    "Mempool",
    "MerkleTree",
    "Network",
    "NetworkStats",
    "MinerNode",
    "Transport",
    "DeterministicTransport",
    "FaultInjectingTransport",
    "AsyncTransport",
    "FaultPlan",
    "FaultDecision",
    "LinkFault",
    "LinkFaultDecider",
    "PartitionSpec",
    "Delivery",
    "BroadcastReport",
    "HandlerFailure",
    "SwarmConfig",
    "SwarmSupervisor",
    "run_reference_workload",
    "run_swarm_workload",
    "StateProof",
    "StateView",
    "WorldState",
    "verify_state_proof",
    "Transaction",
    "TransactionReceipt",
]
