"""Miner nodes: blockchain replicas attached to the simulated network.

Every data owner in the paper's framework runs a miner.  A
:class:`MinerNode` keeps its own chain replica and mempool, gossips
transactions, proposes blocks when selected as leader, verifies other leaders'
proposals by re-execution, and commits blocks that reach a majority.

Under a fault-injecting transport the node additionally recovers from
delivery failures: gossip is retried with exponential backoff, vote
collection treats unreachable miners as abstains (counted in the quorum
denominator) instead of hanging, and a replica that detects it fell behind —
a proposal or commit arriving above its height — resyncs from a peer via the
chain's succinct-commitment fast-sync path.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import ConsensusEngine, VerificationResult
from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.mempool import Mempool
from repro.blockchain.network import Network
from repro.blockchain.transaction import Transaction
from repro.blockchain.transport import DELIVERED, ERROR, BroadcastReport
from repro.exceptions import BlockchainError, ConsensusError, InvalidBlockError

TOPIC_TRANSACTIONS = "tx"
TOPIC_PROPOSAL = "proposal"
TOPIC_COMMIT = "commit"
TOPIC_SYNC = "sync"


class MinerNode:
    """A single miner: chain replica + mempool + network endpoints."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        runtime_factory: Callable[[], ContractRuntime],
        byzantine: bool = False,
        state_root_version: int = 1,
        max_retries: int = 2,
        retry_backoff: int = 2,
    ) -> None:
        if max_retries < 0:
            raise BlockchainError("max_retries must be non-negative")
        if retry_backoff < 1:
            raise BlockchainError("retry_backoff must be at least 1 tick")
        self.node_id = node_id
        self.network = network
        self.chain = Blockchain(
            runtime_factory,
            chain_id=f"chain-{node_id}",
            state_root_version=state_root_version,
        )
        self.mempool = Mempool()
        self.byzantine = byzantine
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Completed resyncs: {"peer", "from_height", "to_height", "blocks"}.
        self.resyncs: list[dict[str, Any]] = []
        network.join(node_id)
        network.subscribe(node_id, TOPIC_TRANSACTIONS, self._on_transaction)
        network.subscribe(node_id, TOPIC_PROPOSAL, self._on_proposal)
        network.subscribe(node_id, TOPIC_COMMIT, self._on_commit)
        network.subscribe(node_id, TOPIC_SYNC, self._on_sync_request)

    # ------------------------------------------------------------------
    # Network handlers
    # ------------------------------------------------------------------

    def _on_transaction(self, sender_id: str, tx: Transaction) -> bool:
        """Gossip handler: admit a transaction into the local mempool.

        A transaction whose nonce the chain has already consumed is a stale
        redelivery (a retried or delayed frame arriving after its block
        committed — routine under the async transport) and is rejected, not
        queued to poison the next proposal.
        """
        try:
            if tx.nonce < self.chain.next_nonce(tx.sender):
                return False
            return self.mempool.add(tx)
        except Exception:  # noqa: BLE001 - a bad tx is simply not admitted
            return False

    def _on_proposal(self, sender_id: str, block: Block) -> dict[str, Any]:
        """Verification protocol: re-execute the proposal and vote.

        A Byzantine miner votes to reject everything, modelling the paper's
        assumption that dishonest miners cannot stall the chain unless they are
        a majority.  A proposal arriving more than one block above the local
        height means this replica missed a commit (e.g. behind a healed
        partition); it resyncs from a peer before judging the proposal.
        """
        if self.byzantine:
            return {"vote": False, "error": "byzantine rejection"}
        if block.height > self.chain.height + 1:
            self.try_resync()
        try:
            # Verify against a throwaway copy of the local chain so the vote
            # does not mutate local state before commit.
            probe = self.chain.clone()
            probe.verify_and_append(block)
            return {"vote": True, "error": ""}
        except Exception as exc:  # noqa: BLE001 - any failure is a rejection vote
            return {"vote": False, "error": str(exc)}

    def _on_commit(self, sender_id: str, block: Block) -> bool:
        """Commit handler: append a block that reached majority acceptance.

        Duplicate commits (redelivered gossip) are idempotently acknowledged,
        and a commit arriving above the next height triggers a peer resync to
        fill the gap before the block is applied.
        """
        if block.height <= self.chain.height:
            # Already have a block at that height; ack iff it is the same one.
            return self.chain.blocks[block.height].block_hash == block.block_hash
        if block.height > self.chain.height + 1:
            self.try_resync()
            if block.height <= self.chain.height:
                return self.chain.blocks[block.height].block_hash == block.block_hash
            if block.height > self.chain.height + 1:
                return False
        try:
            self.commit_block(block)
            return True
        except InvalidBlockError:
            return False

    def _on_sync_request(self, sender_id: str, payload: Any) -> Blockchain:
        """Serve this replica's chain to a peer that fell behind."""
        return self.chain

    # ------------------------------------------------------------------
    # Active behaviour
    # ------------------------------------------------------------------

    def _broadcast_with_retry(self, topic: str, payload: Any) -> BroadcastReport:
        """Broadcast, then retry undelivered recipients with exponential backoff.

        Per-recipient retries are bounded by ``max_retries``; each retry sweep
        "waits" ``retry_backoff`` ticks longer than the previous one (recorded
        on the report — the single-threaded simulation does not sleep).  A
        recipient whose handler *ran* (delivered or raised) is never retried.
        """
        report = self.network.broadcast_detailed(self.node_id, topic, payload)
        pending = report.undelivered()
        backoff = self.retry_backoff
        for _ in range(self.max_retries):
            if not pending:
                break
            report.retry_backoffs.append(backoff)
            self.network.stats.record_retries(topic, len(pending), peer=self.node_id)
            still_pending = []
            for recipient_id in pending:
                delivery = self.network.send_detailed(self.node_id, recipient_id, topic, payload)
                delivery.attempts = report.deliveries[recipient_id].attempts + 1
                report.deliveries[recipient_id] = delivery
                if delivery.status not in (DELIVERED, ERROR):
                    still_pending.append(recipient_id)
            pending = still_pending
            backoff *= 2
        return report

    def submit_transaction(self, tx: Transaction) -> BroadcastReport:
        """Add a transaction locally and gossip it to every peer (with retries)."""
        self.mempool.add(tx)
        return self._broadcast_with_retry(TOPIC_TRANSACTIONS, tx)

    def propose_block(self, limit: int | None = None, view: int | None = None) -> Block:
        """Leader role: build the next block from the local mempool.

        The block is constructed on a copy of the chain so that the leader's
        local replica is only advanced at commit time, keeping all replicas in
        lock-step.  Under epoch-authority rotation the leader stamps the
        consensus ``view`` it proposes for into the header, where every
        verifier checks it against the on-chain schedule.
        """
        txs = self.mempool.peek() if limit is None else self.mempool.peek()[:limit]
        staging = self.chain.clone()
        block = staging.propose_block(self.node_id, txs, view=view)
        return block

    def collect_votes(
        self, block: Block
    ) -> tuple[dict[str, bool], dict[str, str], dict[str, str]]:
        """Broadcast a proposal and gather per-miner votes.

        Proposals get exactly one broadcast — one timeout window per vote
        round, no retries — so a vote that does not come back within the
        window is an *abstain*: recorded as a ``False`` vote (it stays in the
        quorum denominator, so an isolated proposer cannot commit on its own
        1/1 "majority") with the delivery status in the ``unreachable`` map.
        """
        report = self.network.broadcast_detailed(self.node_id, TOPIC_PROPOSAL, block)
        votes = {self.node_id: True}
        rejections: dict[str, str] = {}
        unreachable: dict[str, str] = {}
        for node_id, delivery in sorted(report.deliveries.items()):
            if delivery.status == DELIVERED:
                response = delivery.result
                if not isinstance(response, dict):
                    # A vote must be a mapping; anything else off the wire (a
                    # corrupt or malicious frame) is a rejection, not a crash.
                    votes[node_id] = False
                    rejections[node_id] = f"malformed vote response: {response!r}"
                    continue
                votes[node_id] = bool(response.get("vote", False))
                if not votes[node_id]:
                    rejections[node_id] = str(response.get("error", ""))
            else:
                votes[node_id] = False
                rejections[node_id] = f"no vote received ({delivery.status})"
                unreachable[node_id] = delivery.status
        return votes, rejections, unreachable

    def commit_block(self, block: Block) -> None:
        """Append an accepted block to the local replica and drop included txs.

        Also evicts mempool transactions the commit made stale (nonce already
        consumed) — a late-arriving duplicate of a committed transaction must
        not linger and surface in a later proposal.
        """
        self.chain.verify_and_append(block)
        self.mempool.remove([tx.tx_hash for tx in block.transactions])
        self.evict_stale()

    def evict_stale(self) -> int:
        """Drop mempool transactions whose nonce the chain has already consumed."""
        stale = [
            tx.tx_hash for tx in self.mempool.peek()
            if tx.nonce < self.chain.next_nonce(tx.sender)
        ]
        self.mempool.remove(stale)
        return len(stale)

    def try_resync(self) -> bool:
        """Catch up from the first peer that is ahead with a compatible chain.

        Uses the chain's fast-sync path (structure + header-commitment
        verification, same trust model as ``fast_sync_from``): the peer's
        blocks are validated and version roots recomputed before adoption, and
        the local prefix must match byte for byte.  Transactions contained in
        adopted blocks are dropped from the mempool.  Returns whether any
        blocks were adopted.
        """
        for peer_id in self.network.peers():
            if peer_id == self.node_id:
                continue
            try:
                delivery = self.network.send_detailed(
                    self.node_id, peer_id, TOPIC_SYNC, {"height": self.chain.height}
                )
            except BlockchainError:
                continue  # peer does not serve sync requests
            if delivery.status != DELIVERED or delivery.result is None:
                continue
            peer_chain = delivery.result
            if peer_chain.height <= self.chain.height:
                continue
            from_height = self.chain.height
            try:
                adopted = self.chain.catch_up_from(peer_chain)
            except Exception:  # noqa: BLE001 - an invalid/diverged peer: try the next
                continue
            for block in adopted:
                self.mempool.remove([tx.tx_hash for tx in block.transactions])
            self.evict_stale()
            self.resyncs.append(
                {
                    "peer": peer_id,
                    "from_height": from_height,
                    "to_height": self.chain.height,
                    "blocks": len(adopted),
                }
            )
            return True
        return False

    def run_consensus_round(
        self,
        engine: ConsensusEngine,
        authorities: list[str] | None = None,
        view: int | None = None,
    ) -> VerificationResult:
        """Drive one full consensus round with this node acting as the selected leader.

        The caller is responsible for having chosen this node via the engine's
        leader selector (or, under authority rotation, the epoch schedule at
        the given ``view``); the method proposes, collects votes, and — on
        majority acceptance — commits locally and broadcasts the commit.  A
        rejected proposal raises :class:`ConsensusError` without touching any
        replica, which is what lets the caller fall through a view change to
        the next scheduled proposer.  Unreachable miners abstain (reject) but
        stay in the quorum denominator, and the commit broadcast is retried so
        a transiently lossy link cannot strand a replica behind the swarm.
        """
        block = self.propose_block(view=view)
        votes, rejections, unreachable = self.collect_votes(block)
        result = ConsensusEngine.tally(block, votes, rejections, unreachable=unreachable)
        if result.accepted:
            self.commit_block(block)
            self._broadcast_with_retry(TOPIC_COMMIT, block)
        else:
            raise ConsensusError(
                f"block {block.height} proposed by {self.node_id} was rejected by "
                f"{result.reject_count}/{len(votes)} miners"
            )
        return result
