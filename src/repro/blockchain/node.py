"""Miner nodes: blockchain replicas attached to the simulated network.

Every data owner in the paper's framework runs a miner.  A
:class:`MinerNode` keeps its own chain replica and mempool, gossips
transactions, proposes blocks when selected as leader, verifies other leaders'
proposals by re-execution, and commits blocks that reach a majority.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import ConsensusEngine, VerificationResult
from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.mempool import Mempool
from repro.blockchain.network import Network
from repro.blockchain.transaction import Transaction
from repro.exceptions import ConsensusError, InvalidBlockError

TOPIC_TRANSACTIONS = "tx"
TOPIC_PROPOSAL = "proposal"
TOPIC_COMMIT = "commit"


class MinerNode:
    """A single miner: chain replica + mempool + network endpoints."""

    def __init__(
        self,
        node_id: str,
        network: Network,
        runtime_factory: Callable[[], ContractRuntime],
        byzantine: bool = False,
        state_root_version: int = 1,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.chain = Blockchain(
            runtime_factory,
            chain_id=f"chain-{node_id}",
            state_root_version=state_root_version,
        )
        self.mempool = Mempool()
        self.byzantine = byzantine
        network.join(node_id)
        network.subscribe(node_id, TOPIC_TRANSACTIONS, self._on_transaction)
        network.subscribe(node_id, TOPIC_PROPOSAL, self._on_proposal)
        network.subscribe(node_id, TOPIC_COMMIT, self._on_commit)

    # ------------------------------------------------------------------
    # Network handlers
    # ------------------------------------------------------------------

    def _on_transaction(self, sender_id: str, tx: Transaction) -> bool:
        """Gossip handler: admit a transaction into the local mempool."""
        try:
            return self.mempool.add(tx)
        except Exception:  # noqa: BLE001 - a bad tx is simply not admitted
            return False

    def _on_proposal(self, sender_id: str, block: Block) -> dict[str, Any]:
        """Verification protocol: re-execute the proposal and vote.

        A Byzantine miner votes to reject everything, modelling the paper's
        assumption that dishonest miners cannot stall the chain unless they are
        a majority.
        """
        if self.byzantine:
            return {"vote": False, "error": "byzantine rejection"}
        try:
            # Verify against a throwaway copy of the local chain so the vote
            # does not mutate local state before commit.
            probe = self.chain.clone()
            probe.verify_and_append(block)
            return {"vote": True, "error": ""}
        except Exception as exc:  # noqa: BLE001 - any failure is a rejection vote
            return {"vote": False, "error": str(exc)}

    def _on_commit(self, sender_id: str, block: Block) -> bool:
        """Commit handler: append a block that reached majority acceptance."""
        try:
            self.commit_block(block)
            return True
        except InvalidBlockError:
            return False

    # ------------------------------------------------------------------
    # Active behaviour
    # ------------------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        """Add a transaction locally and gossip it to every peer."""
        self.mempool.add(tx)
        self.network.broadcast(self.node_id, TOPIC_TRANSACTIONS, tx)

    def propose_block(self, limit: int | None = None, view: int | None = None) -> Block:
        """Leader role: build the next block from the local mempool.

        The block is constructed on a copy of the chain so that the leader's
        local replica is only advanced at commit time, keeping all replicas in
        lock-step.  Under epoch-authority rotation the leader stamps the
        consensus ``view`` it proposes for into the header, where every
        verifier checks it against the on-chain schedule.
        """
        txs = self.mempool.peek() if limit is None else self.mempool.peek()[:limit]
        staging = self.chain.clone()
        block = staging.propose_block(self.node_id, txs, view=view)
        return block

    def collect_votes(self, block: Block) -> tuple[dict[str, bool], dict[str, str]]:
        """Broadcast a proposal and gather per-miner votes."""
        responses = self.network.broadcast(self.node_id, TOPIC_PROPOSAL, block)
        votes = {self.node_id: True}
        rejections: dict[str, str] = {}
        for node_id, response in responses.items():
            votes[node_id] = bool(response.get("vote", False))
            if not votes[node_id]:
                rejections[node_id] = str(response.get("error", ""))
        return votes, rejections

    def commit_block(self, block: Block) -> None:
        """Append an accepted block to the local replica and drop included txs."""
        self.chain.verify_and_append(block)
        self.mempool.remove([tx.tx_hash for tx in block.transactions])

    def run_consensus_round(
        self,
        engine: ConsensusEngine,
        authorities: list[str] | None = None,
        view: int | None = None,
    ) -> VerificationResult:
        """Drive one full consensus round with this node acting as the selected leader.

        The caller is responsible for having chosen this node via the engine's
        leader selector (or, under authority rotation, the epoch schedule at
        the given ``view``); the method proposes, collects votes, and — on
        majority acceptance — commits locally and broadcasts the commit.  A
        rejected proposal raises :class:`ConsensusError` without touching any
        replica, which is what lets the caller fall through a view change to
        the next scheduled proposer.
        """
        block = self.propose_block(view=view)
        votes, rejections = self.collect_votes(block)
        result = ConsensusEngine.tally(block, votes, rejections)
        if result.accepted:
            self.commit_block(block)
            self.network.broadcast(self.node_id, TOPIC_COMMIT, block)
        else:
            raise ConsensusError(
                f"block {block.height} proposed by {self.node_id} was rejected by "
                f"{result.reject_count}/{len(votes)} miners"
            )
        return result
