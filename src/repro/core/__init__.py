"""Protocol core: the end-to-end blockchain federated-learning system.

* :mod:`repro.core.config` — the protocol configuration agreed at setup.
* :mod:`repro.core.participant` — a data owner acting as both FL trainer and
  blockchain miner.
* :mod:`repro.core.protocol` — :class:`BlockchainFLProtocol`, the wiring of
  participants, network, and contracts.
* :mod:`repro.core.pipeline` — the staged round pipeline (Setup →
  LocalTraining → Masking/Submission → SecureAggregation → Evaluation →
  Membership → BlockProposal → Settlement) with :class:`RoundScheduler`,
  :class:`RoundContext`, and the :class:`Scenario` hook interface (dropout,
  stragglers, adversary injection, and on-chain cohort joins/leaves/churn).
* :mod:`repro.core.audit` — transparency audits that re-derive every published
  result from raw chain data.
* :mod:`repro.core.adversary` — adversarial participant behaviours (future-work
  §VI item 2) used by the robustness experiments.
"""

from repro.core.adversary import AdversaryBehavior, apply_adversary
from repro.core.audit import AuditReport, audit_chain
from repro.core.config import ProtocolConfig
from repro.core.participant import Participant
from repro.core.pipeline import (
    AdversarialSubmissionScenario,
    AdversaryInjectionScenario,
    ChurnScenario,
    ComposedScenario,
    DropoutScenario,
    JoinScenario,
    LateJoinScenario,
    LeaveScenario,
    ProtocolResult,
    RoundContext,
    RoundResult,
    RoundScheduler,
    Scenario,
    StragglerScenario,
    SubmissionRejection,
)
from repro.core.protocol import BlockchainFLProtocol

__all__ = [
    "AdversaryBehavior",
    "apply_adversary",
    "AuditReport",
    "audit_chain",
    "ProtocolConfig",
    "Participant",
    "BlockchainFLProtocol",
    "ProtocolResult",
    "RoundResult",
    "RoundContext",
    "RoundScheduler",
    "Scenario",
    "ComposedScenario",
    "DropoutScenario",
    "StragglerScenario",
    "LateJoinScenario",
    "JoinScenario",
    "LeaveScenario",
    "ChurnScenario",
    "AdversarialSubmissionScenario",
    "AdversaryInjectionScenario",
    "SubmissionRejection",
]
