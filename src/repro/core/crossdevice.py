"""Cross-device simulation harness: sharded secure aggregation at 1k–10k devices.

The full :class:`~repro.core.protocol.BlockchainFLProtocol` spawns one miner
per owner and gossips every message to every peer — O(n²) traffic that models
a cross-*silo* consortium faithfully but stops being runnable long before
cross-device cohort sizes.  This harness keeps the parts whose cost the PR is
about — real Diffie–Hellman key agreement, real pairwise masking, real ring
aggregation, and the sampled GroupSV estimator — and replaces the consensus
simulation with direct calls, so a 10 000-device round is dominated by the
cryptography it measures rather than by simulated gossip.

Topology: the cohort is dealt into committees of ``shard_size`` devices with
the same :func:`~repro.shapley.group.make_groups` permutation-dealing the
on-chain path uses.  Each committee runs Bonawitz-style secure aggregation
among its own members (O(shard_size) masks per device — the whole point), and
in cross-device mode the committees *are* the GroupSV groups: contribution is
resolved per committee and split equally inside it, exactly Algorithm 1 with
m = number of committees.  With hundreds of committees the exact 2^m
enumeration is infeasible by construction (the engine refuses past
:data:`~repro.shapley.engine.MAX_PLAYERS`), which is what the sampled
estimator is for; ``sv_estimator="exact"`` is still accepted so tests can
assert the refusal.

Device data is synthetic: one centrally-trained base model plus per-device
parameter noise scaled by ``1 − q_i`` where ``q_i`` is the device's quality
weight.  The three quality distributions — ``uniform``, ``linear``,
``quadratic`` — give cohorts where contribution should be flat, linearly
decaying, and front-loaded respectively, which the scenario runs surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import PairwiseMasker, SecureAggregator
from repro.crypto.sharding import shard_count
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ShapleyError, ValidationError
from repro.fl.server import CentralizedTrainer
from repro.shapley.engine import MAX_PLAYERS, coalition_utility_table
from repro.shapley.estimator import (
    ShapleyEstimate,
    estimator_seed_for_round,
    sampled_group_shapley,
)
from repro.shapley.group import assemble_group_values, make_groups
from repro.shapley.utility import AccuracyUtility
from repro.utils.rng import spawn_rng

#: Supported device-quality distributions.
DISTRIBUTIONS = ("uniform", "linear", "quadratic")


def quality_weights(n_devices: int, distribution: str) -> np.ndarray:
    """Per-device quality q_i in [0, 1], best device first.

    ``uniform`` gives every device q = 1; ``linear`` decays as 1 − i/(n−1);
    ``quadratic`` squares the linear decay, concentrating quality in the head.
    """
    if n_devices < 1:
        raise ValidationError("need at least one device")
    if distribution not in DISTRIBUTIONS:
        raise ValidationError(
            f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}"
        )
    if distribution == "uniform" or n_devices == 1:
        return np.ones(n_devices, dtype=np.float64)
    ramp = 1.0 - np.arange(n_devices, dtype=np.float64) / (n_devices - 1)
    return ramp if distribution == "linear" else ramp**2


@dataclass(frozen=True)
class CrossDeviceConfig:
    """Knobs for one cross-device simulation.

    Attributes:
        n_devices: cohort size (the scale axis; 1k–10k is the target range).
        shard_size: committee size — the per-device mask count is
            ``len(shard) − 1 ≤ shard_size − 1``.
        distribution: device-quality distribution (see :data:`DISTRIBUTIONS`).
        sv_estimator: ``"sampled"`` (the cross-device default) or ``"exact"``
            (refused by the engine once committees outnumber its cap).
        sv_samples: permutations for the sampled estimator.
        sv_workers: worker processes for the estimator's batched committee
            scoring (``None``/1 = serial).  Pure wall-clock knob — the batched
            estimator is bit-identical at any worker count, so results stay a
            pure function of the *other* fields.
        n_rounds: simulated rounds.
        seed: master seed — the run is a pure function of this config.
        n_features / n_classes / n_train / n_test: synthetic task shape.
        noise_scale: parameter-noise magnitude applied as
            ``noise_scale · (1 − q_i)``.
        dh_bits: Diffie–Hellman modulus size (test-grade; the cost scaling,
            not the concrete security level, is what the harness measures).
    """

    n_devices: int = 1000
    shard_size: int = 32
    distribution: str = "linear"
    sv_estimator: str = "sampled"
    sv_samples: int = 64
    sv_workers: int | None = None
    n_rounds: int = 1
    seed: int = 7
    n_features: int = 16
    n_classes: int = 4
    n_train: int = 512
    n_test: int = 256
    noise_scale: float = 0.5
    dh_bits: int = 64

    def __post_init__(self) -> None:
        if self.n_devices < 2:
            raise ValidationError("cross-device runs need at least 2 devices")
        if self.shard_size < 2:
            raise ValidationError("shard_size must be at least 2")
        if self.distribution not in DISTRIBUTIONS:
            raise ValidationError(
                f"distribution must be one of {DISTRIBUTIONS}, got {self.distribution!r}"
            )
        if self.sv_estimator not in ("exact", "sampled"):
            raise ValidationError("sv_estimator must be 'exact' or 'sampled'")
        if self.sv_samples < 2:
            raise ValidationError("sv_samples must be at least 2")
        if self.sv_workers is not None:
            if self.sv_workers < 1:
                raise ValidationError("sv_workers must be at least 1 when set")
            if self.sv_estimator != "sampled":
                raise ValidationError("sv_workers only applies to sv_estimator='sampled'")
        if self.n_rounds < 1:
            raise ValidationError("n_rounds must be positive")


@dataclass
class CrossDeviceRound:
    """One simulated round's outputs."""

    round_number: int
    shards: list[list[str]]
    shard_values: list[float]
    user_values: dict[str, float]
    user_half_widths: dict[str, float]
    global_utility: float
    mask_counts: dict[str, int]
    estimator: dict[str, Any] | None
    seconds_masking: float
    seconds_aggregation: float
    seconds_shapley: float


@dataclass
class CrossDeviceResult:
    """A full simulation: per-round records plus accumulated totals."""

    config: CrossDeviceConfig
    rounds: list[CrossDeviceRound] = field(default_factory=list)
    total_contributions: dict[str, float] = field(default_factory=dict)
    quality: dict[str, float] = field(default_factory=dict)

    @property
    def max_mask_count(self) -> int:
        return max(max(r.mask_counts.values()) for r in self.rounds)


def _device_id(index: int, width: int) -> str:
    return f"device-{index:0{width}d}"


def simulate_cross_device(config: CrossDeviceConfig) -> CrossDeviceResult:
    """Run the cross-device simulation and return its result.

    Deterministic in ``config``.  Raises
    :class:`~repro.exceptions.ShapleyError` if ``sv_estimator="exact"`` is
    requested with more committees than the exact engine's player cap — the
    designed-in infeasibility that motivates the sampled estimator.
    """
    width = len(str(config.n_devices - 1))
    device_ids = [_device_id(i, width) for i in range(config.n_devices)]
    quality = quality_weights(config.n_devices, config.distribution)
    quality_by_id = {device: float(q) for device, q in zip(device_ids, quality)}

    # One base model trained centrally; each device's "local model" is the
    # base plus quality-scaled parameter noise.  Cheap enough for 10k devices
    # and gives the quality distributions a direct effect on contribution.
    features, labels = make_blobs(
        config.n_train + config.n_test,
        config.n_features,
        config.n_classes,
        seed=config.seed,
    )
    train_f, test_f = features[: config.n_train], features[config.n_train :]
    train_l, test_l = labels[: config.n_train], labels[config.n_train :]
    trainer = CentralizedTrainer(config.n_features, config.n_classes, epochs=20, learning_rate=1.0)
    base_vector = trainer.train(train_f, train_l, seed=config.seed).to_vector()
    scorer = AccuracyUtility(test_f, test_l, config.n_classes)

    noise_rng = spawn_rng("cross-device-noise", config.seed, config.n_devices)
    device_vectors = {
        device: base_vector
        + config.noise_scale * (1.0 - quality_by_id[device])
        * noise_rng.normal(size=base_vector.size)
        for device in device_ids
    }

    # Real key agreement: one DH keypair per device, shared within shards only.
    dh_params = DHParameters.for_testing(bits=config.dh_bits, seed=config.seed)
    keypairs = {
        device: DHKeyPair.generate(dh_params, device, seed=config.seed)
        for device in device_ids
    }
    public_keys = {device: pair.public_key for device, pair in keypairs.items()}
    codec = FixedPointCodec()
    aggregator = SecureAggregator(codec=codec)

    result = CrossDeviceResult(config=config, quality=quality_by_id)
    n_shards = shard_count(config.n_devices, config.shard_size)
    # One evaluation backend for the whole run: the estimator's dominant cost
    # is committee scoring, and the pool (if any) amortizes across rounds.
    from repro.shapley.backend import make_backend

    evaluation_backend = make_backend(config.sv_workers)
    try:
        _run_rounds(config, result, device_ids, keypairs, public_keys, codec,
                    aggregator, device_vectors, scorer, n_shards, evaluation_backend)
    finally:
        evaluation_backend.close()
    return result


def _run_rounds(config, result, device_ids, keypairs, public_keys, codec,
                aggregator, device_vectors, scorer, n_shards, evaluation_backend):
    """The round loop, split out so the backend's lifetime wraps it cleanly."""
    for round_number in range(config.n_rounds):
        # Committees re-deal every round with the canonical permutation.
        shards = make_groups(device_ids, n_shards, config.seed, round_number)

        t0 = time.perf_counter()
        masked_by_shard = []
        mask_counts: dict[str, int] = {}
        for shard in shards:
            shard_keys = {device: public_keys[device] for device in shard}
            updates = []
            for device in shard:
                peer_keys = {d: k for d, k in shard_keys.items() if d != device}
                masker = PairwiseMasker(device, keypairs[device], peer_keys, codec=codec)
                updates.append(masker.mask(device_vectors[device], round_number))
                mask_counts[device] = len(peer_keys)
            masked_by_shard.append(updates)
        t1 = time.perf_counter()
        shard_models = [aggregator.aggregate_mean(updates) for updates in masked_by_shard]
        t2 = time.perf_counter()

        labels_m = [f"shard-{j}" for j in range(len(shards))]
        vectors = dict(zip(labels_m, shard_models))
        estimator_meta: dict[str, Any] | None = None
        half_widths = [0.0] * len(shards)
        if config.sv_estimator == "sampled":
            estimate: ShapleyEstimate = sampled_group_shapley(
                labels_m,
                vectors,
                scorer,
                n_permutations=config.sv_samples,
                seed=estimator_seed_for_round(config.seed, round_number),
                backend=evaluation_backend,
            )
            shard_values = [estimate.values[label] for label in labels_m]
            half_widths = [estimate.half_widths[label] for label in labels_m]
            global_utility = estimate.grand_utility
            estimator_meta = {
                "name": "sampled",
                "n_samples": estimate.n_permutations,
                "seed": estimate.seed,
                "confidence": estimate.confidence,
                "tolerance": estimate.tolerance,
                "evaluations": estimate.evaluations,
            }
            if estimate.telemetry is not None:
                # Off-chain harness record: the deterministic counters plus
                # the backend identity and scoring wall time (which *may*
                # differ run to run — they never feed a receipt).
                estimator_meta["telemetry"] = dict(estimate.telemetry)
        else:
            if len(shards) > MAX_PLAYERS:
                # coalition_utility_table would silently fall back to a 2^m
                # scalar walk; at cross-device committee counts that walk is
                # the infeasible computation this harness exists to retire, so
                # refuse instead of burning CPU for days.
                raise ShapleyError(
                    f"exact GroupSV over {len(shards)} committees needs 2^{len(shards)} "
                    f"coalition evaluations (the engine caps at {MAX_PLAYERS} players); "
                    "use sv_estimator='sampled' for cross-device scale"
                )
            utilities = coalition_utility_table(vectors, scorer)
            value_map = assemble_group_values(labels_m, utilities, sv_assembly_version=2)
            shard_values = [value_map[label] for label in labels_m]
            global_utility = utilities[tuple(sorted(labels_m))]
        t3 = time.perf_counter()

        user_values: dict[str, float] = {}
        user_half_widths: dict[str, float] = {}
        for shard, value, width in zip(shards, shard_values, half_widths):
            for device in shard:
                user_values[device] = value / len(shard)
                user_half_widths[device] = width / len(shard)
        for device, value in user_values.items():
            result.total_contributions[device] = (
                result.total_contributions.get(device, 0.0) + value
            )
        result.rounds.append(
            CrossDeviceRound(
                round_number=round_number,
                shards=[list(shard) for shard in shards],
                shard_values=[float(v) for v in shard_values],
                user_values=user_values,
                user_half_widths=user_half_widths,
                global_utility=float(global_utility),
                mask_counts=mask_counts,
                estimator=estimator_meta,
                seconds_masking=t1 - t0,
                seconds_aggregation=t2 - t1,
                seconds_shapley=t3 - t2,
            )
        )
    return result
