"""Transparency audits: re-derive published results from raw chain data.

The framework's central claim is that contribution evaluation is *transparent
and verifiable*: any participant (or outside auditor) holding the chain can
re-derive every group model, every coalition utility, and every contribution
score without trusting whoever proposed the blocks.  :func:`audit_chain` does
exactly that — it replays the chain from genesis, recomputes the GroupSV
evaluation for every finalized round from the published group models, and
compares the results against the values stored by the contracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.chain import Blockchain
from repro.exceptions import AuditError
from repro.shapley.engine import coalition_utility_table
from repro.shapley.group import assemble_group_values


@dataclass
class AuditReport:
    """Result of a transparency audit over a protocol chain.

    Attributes:
        chain_valid: structural validation and full replay succeeded.
        rounds_checked: round numbers whose evaluation was independently recomputed.
        mismatches: human-readable descriptions of any discrepancy found.
        recomputed_totals: the auditor's own accumulated per-owner contributions.
    """

    chain_valid: bool
    rounds_checked: list[int] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    recomputed_totals: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when the chain replays cleanly and every evaluation matches."""
        return self.chain_valid and not self.mismatches


def _recompute_round(scorer, round_record: dict, sv_assembly_version: int = 1) -> dict[str, float]:
    """Recompute Algorithm 1 lines 4-7 from a round's published group models.

    The auditor runs the same vectorized bitmask engine as the contract (the
    subset-sum coalition construction and batched scoring are deterministic)
    and the same exact-SV assembly version the chain pinned at setup, so
    within one software stack a reported divergence is a genuine
    discrepancy in the published values; :func:`audit_chain` compares the
    recomputed contributions under a tolerance that absorbs residual
    cross-version numeric drift.
    """
    groups = [list(group) for group in round_record["groups"]]
    group_models = [np.asarray(model, dtype=np.float64) for model in round_record["group_models"]]
    labels = [f"group-{j}" for j in range(len(groups))]
    utilities = coalition_utility_table(dict(zip(labels, group_models)), scorer)
    group_value_map = assemble_group_values(labels, utilities, sv_assembly_version)
    user_values: dict[str, float] = {}
    for label, group in zip(labels, groups):
        share = group_value_map[label] / len(group)
        for owner in group:
            user_values[owner] = share
    return user_values


def audit_chain(
    chain: Blockchain,
    validation_features: np.ndarray,
    validation_labels: np.ndarray,
    n_classes: int,
    tolerance: float = 1e-9,
    raise_on_failure: bool = False,
) -> AuditReport:
    """Audit a protocol chain end to end.

    Args:
        chain: any replica of the protocol chain.
        validation_features / validation_labels / n_classes: the public
            validation set agreed at setup (the auditor must know the utility
            function, exactly as the paper assumes).
        tolerance: numeric tolerance when comparing recomputed contributions.
        raise_on_failure: raise :class:`AuditError` instead of returning a
            failing report.
    """
    from repro.shapley.utility import AccuracyUtility

    validation_features = np.asarray(validation_features, dtype=np.float64)
    validation_labels = np.asarray(validation_labels).ravel().astype(int)
    scorer = AccuracyUtility(validation_features, validation_labels, n_classes)

    report = AuditReport(chain_valid=True)

    # 1. Structural validation and full replay from genesis.
    try:
        replayed = chain.replay()
        if replayed.state.state_root() != chain.state.state_root():
            report.chain_valid = False
            report.mismatches.append("replayed state root differs from the live replica's state root")
    except Exception as exc:  # noqa: BLE001 - any replay failure fails the audit
        report.chain_valid = False
        report.mismatches.append(f"chain replay failed: {exc}")
        if raise_on_failure:
            raise AuditError("; ".join(report.mismatches)) from exc
        return report

    # 2. Recompute every evaluated round from the published group models,
    #    honouring the exact-SV assembly version pinned on the registry.
    state = replayed.state
    pinned_params = state.get("registry", "protocol_params") or {}
    sv_assembly_version = int(pinned_params.get("sv_assembly_version", 1))
    evaluated_rounds = sorted(
        int(key.split("/", 1)[1])
        for key in state.keys("contribution")
        if key.startswith("evaluation/")
    )
    for round_number in evaluated_rounds:
        round_record = state.get("fl_training", f"round/{round_number}")
        stored = state.get("contribution", f"evaluation/{round_number}")
        if round_record is None or stored is None:
            report.mismatches.append(f"round {round_number}: missing training or evaluation record")
            continue
        recomputed = _recompute_round(scorer, round_record, sv_assembly_version)
        stored_values = {owner: float(value) for owner, value in stored["user_values"].items()}
        if set(recomputed) != set(stored_values):
            report.mismatches.append(f"round {round_number}: contribution covers different owners")
        else:
            for owner, value in recomputed.items():
                if abs(value - stored_values[owner]) > tolerance:
                    report.mismatches.append(
                        f"round {round_number}: owner {owner} stored {stored_values[owner]:.6f} "
                        f"but recomputation gives {value:.6f}"
                    )
        for owner, value in recomputed.items():
            report.recomputed_totals[owner] = report.recomputed_totals.get(owner, 0.0) + value
        report.rounds_checked.append(round_number)

    # 3. Check the accumulated totals stored by the contract.
    stored_totals = state.get("contribution", "totals", {})
    for owner, value in report.recomputed_totals.items():
        if abs(float(stored_totals.get(owner, 0.0)) - value) > max(tolerance * 10, 1e-8):
            report.mismatches.append(
                f"totals: owner {owner} stored {float(stored_totals.get(owner, 0.0)):.6f} "
                f"but recomputation gives {value:.6f}"
            )

    if raise_on_failure and not report.passed:
        raise AuditError("; ".join(report.mismatches))
    return report
