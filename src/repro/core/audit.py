"""Transparency audits: re-derive published results from raw chain data.

The framework's central claim is that contribution evaluation is *transparent
and verifiable*: any participant (or outside auditor) holding the chain can
re-derive every group model, every coalition utility, and every contribution
score without trusting whoever proposed the blocks.  :func:`audit_chain` does
exactly that — it replays the chain from genesis, recomputes the GroupSV
evaluation for every finalized round from the published group models, and
compares the results against the values stored by the contracts.

Two verification modes share every recomputation except the first step:

* ``mode="replay"`` (default) re-executes every block from genesis — the
  trustless oracle: nothing is assumed beyond the raw block data.
* ``mode="incremental"`` verifies each committed header's ``state_root``
  against the replica's retained per-block state versions
  (:meth:`~repro.blockchain.chain.Blockchain.verify_version_roots`) instead of
  re-executing — O(Δ) per block on Merkle-rooted chains.  Trust reduces to the
  majority-voted headers (the succinct-commitment model); the verdicts are
  identical to a full replay, which tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blockchain.chain import Blockchain
from repro.blockchain.consensus import committed_round_of_block, scheduled_proposer
from repro.blockchain.contracts.registry import (
    cohort_for_round_from_state,
    epochs_from_state,
    pinned_aggregation_topology,
    pinned_state_root_version,
    pinned_sv_estimator,
)
from repro.blockchain.contracts.reward import mass_proportional_pools, proportional_payouts
from repro.crypto.sharding import shard_group
from repro.exceptions import AuditError
from repro.shapley.engine import coalition_utility_table
from repro.shapley.estimator import estimator_seed_for_round, sampled_group_shapley
from repro.shapley.group import assemble_group_values


@dataclass
class AuditReport:
    """Result of a transparency audit over a protocol chain.

    Attributes:
        chain_valid: structural validation and the state verification (full
            replay, or the incremental header-commitment walk) succeeded.
        state_versions_checked: block heights whose header ``state_root`` was
            verified against the replica's retained state versions
            (incremental mode only; empty under full replay).
        rounds_checked: round numbers whose evaluation was independently recomputed.
        epochs_checked: cohort epochs whose membership and totals were verified.
        proposers_checked: round numbers whose block proposer (and, on
            authority-rotation chains, view number) was recomputed from the
            registry's epoch-authority schedule and matched the header.
        estimators_checked: sampled-estimator rounds whose receipts — the
            estimator seed/sample-count metadata, the re-run estimate, and
            the recorded confidence bounds — all verified from chain state.
        mismatches: human-readable descriptions of any discrepancy found.
        recomputed_totals: the auditor's own accumulated per-owner contributions.
        recomputed_epoch_totals: the auditor's per-epoch accumulated contributions
            (epoch index -> owner -> value), derived from the registry's epochs.
        prune_horizon: the oldest block height whose reverse delta the replica
            still retains, when older deltas were pruned (``None`` on unpruned
            chains or under full replay, where pruning is irrelevant).
        replayed_below_horizon: block heights the incremental audit could not
            cover with the O(Δ) header-commitment walk (their deltas were
            pruned) and verified by snapshot+replay from genesis instead.
            Empty on unpruned chains — the audit's verdicts are the same
            either way, only the cost model changes, and this field makes the
            fallback visible in the report.
    """

    chain_valid: bool
    state_versions_checked: list[int] = field(default_factory=list)
    rounds_checked: list[int] = field(default_factory=list)
    epochs_checked: list[int] = field(default_factory=list)
    proposers_checked: list[int] = field(default_factory=list)
    estimators_checked: list[int] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    recomputed_totals: dict[str, float] = field(default_factory=dict)
    recomputed_epoch_totals: dict[int, dict[str, float]] = field(default_factory=dict)
    prune_horizon: int | None = None
    replayed_below_horizon: list[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when the chain replays cleanly and every evaluation matches."""
        return self.chain_valid and not self.mismatches


def _recompute_round(scorer, round_record: dict, sv_assembly_version: int = 1) -> dict[str, float]:
    """Recompute Algorithm 1 lines 4-7 from a round's published group models.

    The auditor runs the same vectorized bitmask engine as the contract (the
    subset-sum coalition construction and batched scoring are deterministic)
    and the same exact-SV assembly version the chain pinned at setup, so
    within one software stack a reported divergence is a genuine
    discrepancy in the published values; :func:`audit_chain` compares the
    recomputed contributions under a tolerance that absorbs residual
    cross-version numeric drift.
    """
    groups = [list(group) for group in round_record["groups"]]
    group_models = [np.asarray(model, dtype=np.float64) for model in round_record["group_models"]]
    labels = [f"group-{j}" for j in range(len(groups))]
    utilities = coalition_utility_table(dict(zip(labels, group_models)), scorer)
    group_value_map = assemble_group_values(labels, utilities, sv_assembly_version)
    user_values: dict[str, float] = {}
    for label, group in zip(labels, groups):
        share = group_value_map[label] / len(group)
        for owner in group:
            user_values[owner] = share
    return user_values


def _audit_sampled_round(
    scorer,
    round_record: dict,
    stored: dict,
    permutation_seed: int,
    sv_samples: int,
    report: AuditReport,
    tolerance: float,
    backend=None,
) -> bool:
    """Verify one sampled-estimator round's receipts from chain state alone.

    Three layers, each defeating a different way a proposer could cheat:

    1. The recorded estimator metadata (seed, sample count) must be the
       canonical chain-state derivation — no shopping for a favourable sample.
    2. The recorded half-widths must match the re-run estimator's — no
       inflating the bound until any value "verifies".
    3. The recorded estimates must lie within the *verified* bound of the
       auditor's own re-run — "estimate ± bound" instead of exact equality,
       absorbing residual cross-stack numeric drift without trusting the
       proposer's arithmetic.

    The per-user receipts are then an arithmetic consequence of the group
    receipts (equal split), checked exactly.  Returns True when every layer
    verified.
    """
    round_number = int(stored["round"])
    groups = [list(group) for group in round_record["groups"]]
    group_models = [np.asarray(model, dtype=np.float64) for model in round_record["group_models"]]
    labels = [f"group-{j}" for j in range(len(groups))]
    ok = True
    tol = max(tolerance * 10, 1e-8)

    meta = stored.get("estimator") or {}
    expected_seed = estimator_seed_for_round(permutation_seed, round_number)
    if meta.get("name") != "sampled" or int(meta.get("seed", -1)) != expected_seed:
        report.mismatches.append(
            f"round {round_number}: estimator receipt {meta!r} is not the canonical "
            f"sampled estimator with seed {expected_seed}"
        )
        ok = False
    estimate = sampled_group_shapley(
        labels,
        dict(zip(labels, group_models)),
        scorer,
        n_permutations=sv_samples,
        seed=expected_seed,
        backend=backend,
    )
    recorded_telemetry = meta.get("telemetry")
    if recorded_telemetry is not None and estimate.telemetry is not None:
        # The receipt's counters are deterministic in (labels, n_samples,
        # seed); a disagreement means the proposer ran a different workload
        # than it claims.  Skipped when the auditor re-runs the scalar oracle
        # (no telemetry) — the value/half-width checks below still bind.
        for counter in ("coalitions", "cache_hits", "batches"):
            if int(recorded_telemetry.get(counter, -1)) != int(estimate.telemetry[counter]):
                report.mismatches.append(
                    f"round {round_number}: estimator telemetry records "
                    f"{counter}={recorded_telemetry.get(counter)} but the re-run "
                    f"gives {estimate.telemetry[counter]}"
                )
                ok = False
    if int(meta.get("n_samples", -1)) != estimate.n_permutations:
        report.mismatches.append(
            f"round {round_number}: receipt records {meta.get('n_samples')} permutations "
            f"but the pinned sample count re-runs as {estimate.n_permutations}"
        )
        ok = False

    stored_values = [float(value) for value in stored.get("group_values", [])]
    stored_widths = [float(width) for width in stored.get("group_half_widths", [])]
    if len(stored_values) != len(labels) or len(stored_widths) != len(labels):
        report.mismatches.append(
            f"round {round_number}: sampled receipt is missing group values or half-widths"
        )
        return False
    for label, value, width in zip(labels, stored_values, stored_widths):
        if abs(width - estimate.half_widths[label]) > tol:
            report.mismatches.append(
                f"round {round_number}: {label} records half-width {width:.6g} but the "
                f"re-run estimator gives {estimate.half_widths[label]:.6g}"
            )
            ok = False
        if abs(value - estimate.values[label]) > estimate.half_widths[label] + tol:
            report.mismatches.append(
                f"round {round_number}: {label} stored {value:.6f}, outside the verified "
                f"±{estimate.half_widths[label]:.6g} bound of the re-run estimate "
                f"{estimate.values[label]:.6f}"
            )
            ok = False
    if abs(float(stored.get("global_utility", 0.0)) - estimate.grand_utility) > tol:
        report.mismatches.append(
            f"round {round_number}: stored global utility "
            f"{float(stored.get('global_utility', 0.0)):.6f} but the re-run gives "
            f"{estimate.grand_utility:.6f}"
        )
        ok = False

    # Per-user receipts follow from the group receipts by the equal split.
    stored_users = {owner: float(value) for owner, value in stored.get("user_values", {}).items()}
    stored_user_widths = {
        owner: float(width) for owner, width in stored.get("user_half_widths", {}).items()
    }
    expected_owners = {owner for group in groups for owner in group}
    if set(stored_users) != expected_owners or set(stored_user_widths) != expected_owners:
        report.mismatches.append(f"round {round_number}: user receipts cover different owners")
        return False
    for group, value, width in zip(groups, stored_values, stored_widths):
        for owner in group:
            if abs(stored_users[owner] - value / len(group)) > tol or (
                abs(stored_user_widths[owner] - width / len(group)) > tol
            ):
                report.mismatches.append(
                    f"round {round_number}: owner {owner}'s receipt is not the equal "
                    f"split of its group's (value, bound)"
                )
                ok = False
    return ok


def _audit_evaluated_rounds(
    evaluated_rounds,
    state,
    scorer,
    pinned_params,
    sv_assembly_version,
    topology,
    shard_size,
    estimator_name,
    sv_samples,
    tolerance,
    report,
    round_values,
    evaluation_backend,
) -> None:
    """Step 2 of :func:`audit_chain`: recompute every evaluated round.

    Split out so the evaluation backend's lifetime wraps exactly the loop that
    uses it (the only audit step that re-runs the sampled estimator).
    """
    for round_number in evaluated_rounds:
        round_record = state.get("fl_training", f"round/{round_number}")
        stored = state.get("contribution", f"evaluation/{round_number}")
        if round_record is None or stored is None:
            report.mismatches.append(f"round {round_number}: missing training or evaluation record")
            continue
        # The published grouping must cover exactly the cohort the registry's
        # epoch view derives for this round — a proposer can neither smuggle a
        # not-yet-joined owner into a round nor keep settling a departed one.
        cohort = cohort_for_round_from_state(state, round_number)
        grouped = sorted(owner for group in round_record["groups"] for owner in group)
        if grouped != cohort:
            report.mismatches.append(
                f"round {round_number}: published groups cover {grouped} but the "
                f"registry's active cohort is {cohort}"
            )
        # On a sharded chain the round block records the committee assignment
        # it aggregated under; it must be the canonical chain-state derivation
        # (and a flat chain must not record one at all).
        if topology == "sharded":
            canonical_shards = [
                [list(shard) for shard in shard_group(list(group), shard_size)]
                for group in round_record["groups"]
            ]
            recorded_shards = round_record.get("shards")
            if recorded_shards != canonical_shards:
                report.mismatches.append(
                    f"round {round_number}: recorded shards differ from the canonical "
                    f"chain-state assignment"
                )
        elif "shards" in round_record:
            report.mismatches.append(
                f"round {round_number}: records shards on a flat-topology chain"
            )
        if estimator_name == "sampled":
            # Sampled receipts: verify the estimator metadata is the canonical
            # derivation, re-run the estimator, and check the stored values
            # lie within the *verified* bounds — exact accumulation is then
            # checked downstream against the stored per-round receipts.
            if _audit_sampled_round(
                scorer,
                round_record,
                stored,
                int(pinned_params["permutation_seed"]),
                sv_samples,
                report,
                tolerance,
                backend=evaluation_backend,
            ):
                report.estimators_checked.append(round_number)
            recomputed = {owner: float(value) for owner, value in stored["user_values"].items()}
        else:
            recomputed = _recompute_round(scorer, round_record, sv_assembly_version)
            stored_values = {owner: float(value) for owner, value in stored["user_values"].items()}
            if set(recomputed) != set(stored_values):
                report.mismatches.append(f"round {round_number}: contribution covers different owners")
            else:
                for owner, value in recomputed.items():
                    if abs(value - stored_values[owner]) > tolerance:
                        report.mismatches.append(
                            f"round {round_number}: owner {owner} stored {stored_values[owner]:.6f} "
                            f"but recomputation gives {value:.6f}"
                        )
        round_values[round_number] = recomputed
        for owner, value in recomputed.items():
            report.recomputed_totals[owner] = report.recomputed_totals.get(owner, 0.0) + value
        report.rounds_checked.append(round_number)


def audit_chain(
    chain: Blockchain,
    validation_features: np.ndarray,
    validation_labels: np.ndarray,
    n_classes: int,
    tolerance: float = 1e-9,
    raise_on_failure: bool = False,
    mode: str = "replay",
    sv_workers: int | None = None,
) -> AuditReport:
    """Audit a protocol chain end to end.

    Five independent recomputations, each from raw chain data only: (1) the
    chain's state history is verified — by full genesis re-execution
    (``mode="replay"``), or by checking every committed header's
    ``state_root`` against the replica's retained per-block state versions
    (``mode="incremental"``, O(Δ) per block on Merkle-rooted chains) — (2)
    every round's GroupSV evaluation is recomputed from the published group
    models under the pinned ``sv_assembly_version`` (on sampled-estimator
    chains the estimator is re-run from the chain-derived seed and the
    receipts checked within their verified confidence bounds; on sharded
    chains the recorded committee assignment is checked against the canonical
    derivation), (3) the accumulated
    per-owner totals must match the contract's, (4) cohort epochs, per-epoch
    SV mass, and every recorded settlement are re-derived and checked, and
    (5) every round block's proposer — plus its consensus view on
    ``authority_rotation`` chains — is recomputed from the registry's
    epoch-authority schedule.

    Args:
        chain: any replica of the protocol chain.
        validation_features / validation_labels / n_classes: the public
            validation set agreed at setup (the auditor must know the utility
            function, exactly as the paper assumes).
        tolerance: numeric tolerance when comparing recomputed contributions.
        raise_on_failure: raise :class:`AuditError` instead of returning a
            failing report.
        mode: ``"replay"`` re-executes every block (the trustless oracle);
            ``"incremental"`` verifies the header state commitments instead
            and reads all published records through the verified state —
            identical verdicts, succinct-commitment trust model.
        sv_workers: worker processes for re-running the sampled estimator's
            batched committee scoring (``None``/1 = serial).  Purely a
            wall-clock knob — the batched estimator is bit-identical at any
            worker count, so the verdict never depends on it.

    Returns:
        An :class:`AuditReport`; ``report.passed`` is True iff the chain
        verifies cleanly and every recomputation matches the published values.
    """
    from repro.shapley.utility import AccuracyUtility

    if mode not in ("replay", "incremental"):
        raise AuditError(f"unknown audit mode {mode!r} (expected 'replay' or 'incremental')")
    validation_features = np.asarray(validation_features, dtype=np.float64)
    validation_labels = np.asarray(validation_labels).ravel().astype(int)
    scorer = AccuracyUtility(validation_features, validation_labels, n_classes)

    report = AuditReport(chain_valid=True)

    # 1. State-history verification: full replay from genesis, or the
    #    incremental walk over the committed header state roots.
    try:
        if mode == "replay":
            replayed = chain.replay()
            if replayed.state.state_root() != chain.state.state_root():
                report.chain_valid = False
                report.mismatches.append("replayed state root differs from the live replica's state root")
            state = replayed.state
        else:
            chain.validate_chain()
            report.state_versions_checked = chain.verify_version_roots()
            # On a pruned chain the header-commitment walk stops at the
            # oldest retained delta; everything below the horizon is verified
            # by snapshot+replay (verify_and_append re-checks every receipt
            # and state root) and reported as such.
            lowest_verified = report.state_versions_checked[-1]
            if lowest_verified > 0:
                report.prune_horizon = chain.oldest_retained_version()
                chain.replay_prefix(lowest_verified - 1)
                report.replayed_below_horizon = list(range(lowest_verified))
            state = chain.state
    except Exception as exc:  # noqa: BLE001 - any verification failure fails the audit
        report.chain_valid = False
        report.mismatches.append(f"chain {mode} verification failed: {exc}")
        if raise_on_failure:
            raise AuditError("; ".join(report.mismatches)) from exc
        return report

    # 2. Recompute every evaluated round from the published group models,
    #    honouring the exact-SV assembly version pinned on the registry.
    #    The state-commitment format is a consensus parameter too: the replica
    #    must commit the root version the chain pinned at setup, or its
    #    headers are not comparable to what the other miners voted on.
    pinned_params = state.get("registry", "protocol_params") or {}
    if pinned_params and pinned_state_root_version(state) != chain.state_root_version:
        report.mismatches.append(
            f"registry pins state_root_version {pinned_state_root_version(state)} "
            f"but this replica commits version {chain.state_root_version}"
        )
    sv_assembly_version = int(pinned_params.get("sv_assembly_version", 1))
    topology, shard_size = pinned_aggregation_topology(pinned_params)
    estimator_name, sv_samples = pinned_sv_estimator(pinned_params)
    evaluated_rounds = sorted(
        int(key.split("/", 1)[1])
        for key in state.keys("contribution")
        if key.startswith("evaluation/")
    )
    round_values: dict[int, dict[str, float]] = {}
    from repro.shapley.backend import make_backend

    evaluation_backend = make_backend(sv_workers)
    try:
        _audit_evaluated_rounds(
            evaluated_rounds, state, scorer, pinned_params, sv_assembly_version,
            topology, shard_size, estimator_name, sv_samples, tolerance, report,
            round_values, evaluation_backend,
        )
    finally:
        evaluation_backend.close()

    # 3. Check the accumulated totals stored by the contract.
    stored_totals = state.get("contribution", "totals", {})
    for owner, value in report.recomputed_totals.items():
        if abs(float(stored_totals.get(owner, 0.0)) - value) > max(tolerance * 10, 1e-8):
            report.mismatches.append(
                f"totals: owner {owner} stored {float(stored_totals.get(owner, 0.0)):.6f} "
                f"but recomputation gives {value:.6f}"
            )

    # 4. Verify the cohort epochs: recompute each epoch's per-owner totals
    #    from the independently recomputed rounds, and — when the chain
    #    settled rewards per epoch — check the published SV masses and payout
    #    cohorts against them.  Fixed-cohort chains have exactly one epoch and
    #    the check degenerates to the totals comparison above.
    n_rounds = int(pinned_params.get("n_rounds", 0) or 0)
    if n_rounds:
        _audit_epochs(state, report, round_values, n_rounds, tolerance)

    # 5. Verify the consensus authority: on an authority-rotation chain,
    #    recompute every committed round's scheduled proposer from the
    #    registry's epoch view and check it (and the view number) against the
    #    block header; on a static chain, check that no header smuggles in a
    #    view.  Either way the proposer of every round block is recomputable
    #    from chain state alone.
    _audit_proposers(chain, state, bool(pinned_params.get("authority_rotation")), report)

    if raise_on_failure and not report.passed:
        raise AuditError("; ".join(report.mismatches))
    return report


def _audit_proposers(chain: Blockchain, state, rotation: bool, report: AuditReport) -> None:
    """Recompute and verify the proposer schedule of every committed round block.

    The schedule of round ``r`` depends only on membership boundaries at or
    below ``r``, all committed strictly before round ``r``'s block, so the
    final replayed state derives exactly the schedule every miner used at
    proposal time.  What the audit verifies is *entitlement*: the view is in
    range and the proposer is the schedule's pick for ``(round, view)``.
    Whether the skipped views' leaders were genuinely silent is not
    recomputable from chain data — neither miners nor the auditor check view
    minimality (that would need timeout/view-change certificates, which this
    simulation does not model; see docs/consensus.md).
    """
    for block in chain.blocks[1:]:
        fl_round = committed_round_of_block(block)
        if fl_round is None or not rotation:
            if block.header.view is not None:
                report.mismatches.append(
                    f"block {block.height}: carries view {block.header.view} but "
                    "no authority schedule applies to it"
                )
            continue
        if block.header.view is None:
            report.mismatches.append(
                f"round {fl_round}: block {block.height} has no view number on an "
                "authority-rotation chain"
            )
            continue
        expected = scheduled_proposer(state, fl_round, block.header.view)
        if block.header.proposer != expected:
            report.mismatches.append(
                f"round {fl_round}: block {block.height} (view {block.header.view}) names "
                f"proposer {block.header.proposer} but the schedule recomputes {expected}"
            )
        else:
            report.proposers_checked.append(fl_round)


def _audit_epochs(
    state,
    report: AuditReport,
    round_values: dict[int, dict[str, float]],
    n_rounds: int,
    tolerance: float,
) -> None:
    """Epoch-by-epoch verification of cohorts, SV mass, and settlement records."""
    for epoch in epochs_from_state(state, n_rounds):
        index = int(epoch["epoch"])
        totals: dict[str, float] = {}
        for round_number in range(int(epoch["start"]), int(epoch["end"])):
            for owner, value in round_values.get(round_number, {}).items():
                totals[owner] = totals.get(owner, 0.0) + value
        report.recomputed_epoch_totals[index] = totals
        extra = sorted(set(totals) - set(epoch["cohort"]))
        if extra:
            report.mismatches.append(
                f"epoch {index}: rounds settled value to {extra}, owners outside the epoch cohort"
            )
        report.epochs_checked.append(index)

    # Every recorded settlement — distribute_by_epoch under any label, and
    # single-epoch distribute_epoch calls — is checked against the auditor's
    # own per-epoch totals; a fixed label would let a proposer settle under a
    # different one and dodge the check entirely.  Payout *amounts* are
    # recomputed with the contract's own proportional rule, and for a by-epoch
    # settlement the mass-proportional pool split itself is re-derived.
    tol = max(tolerance * 10, 1e-8)
    recomputed_masses = {
        index: sum(max(value, 0.0) for value in totals.values())
        for index, totals in report.recomputed_epoch_totals.items()
    }
    for key in sorted(state.keys("reward")):
        if not key.startswith("distribution/"):
            continue
        label = key.split("/", 1)[1]
        distribution = state.get("reward", key, {}) or {}
        breakdown = distribution.get("epochs")
        if breakdown is not None:
            expected_pools = mass_proportional_pools(
                report.recomputed_epoch_totals,
                recomputed_masses,
                float(distribution.get("reward_pool", 0.0)),
            )
            for epoch_key, settled in breakdown.items():
                index = int(epoch_key)
                totals = report.recomputed_epoch_totals.get(index)
                if totals is None:
                    report.mismatches.append(
                        f"distribution {label!r} settles epoch {index}, which does not exist"
                    )
                    continue
                if abs(float(settled.get("sv_mass", 0.0)) - recomputed_masses[index]) > tol:
                    report.mismatches.append(
                        f"distribution {label!r}, epoch {index}: recorded SV mass "
                        f"{settled.get('sv_mass', 0.0):.6f} but recomputation gives "
                        f"{recomputed_masses[index]:.6f}"
                    )
                pool = float(settled.get("reward_pool", 0.0))
                if abs(pool - expected_pools.get(index, 0.0)) > tol:
                    report.mismatches.append(
                        f"distribution {label!r}, epoch {index}: pool {pool:.6f} is not the "
                        f"mass-proportional share {expected_pools.get(index, 0.0):.6f}"
                    )
                _check_payouts(
                    report, f"distribution {label!r}, epoch {index}",
                    settled.get("payouts", {}), totals, pool, tol,
                )
            missing = sorted(set(expected_pools) - {int(k) for k in breakdown})
            if missing:
                report.mismatches.append(
                    f"distribution {label!r} skips epochs {missing} that have settleable value"
                )
        elif "epoch" in distribution:
            index = int(distribution["epoch"])
            totals = report.recomputed_epoch_totals.get(index)
            if totals is None:
                report.mismatches.append(
                    f"distribution {label!r} settles epoch {index}, which does not exist"
                )
                continue
            _check_payouts(
                report, f"distribution {label!r}, epoch {index}",
                distribution.get("payouts", {}), totals,
                float(distribution.get("reward_pool", 0.0)), tol,
            )


def _check_payouts(
    report: AuditReport,
    where: str,
    paid: dict[str, float],
    totals: dict[str, float],
    pool: float,
    tol: float,
) -> None:
    """Compare recorded payouts against the recomputed proportional amounts."""
    expected = proportional_payouts(totals, pool)
    if set(paid) != set(expected):
        report.mismatches.append(
            f"{where}: paid owners {sorted(paid)} but recomputation pays {sorted(expected)}"
        )
        return
    for owner, amount in expected.items():
        if abs(float(paid[owner]) - amount) > tol:
            report.mismatches.append(
                f"{where}: owner {owner} paid {float(paid[owner]):.6f} "
                f"but recomputation gives {amount:.6f}"
            )
