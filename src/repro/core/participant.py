"""Participants: data owners that are simultaneously FL trainers and miners."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.network import Network
from repro.blockchain.node import MinerNode
from repro.blockchain.transaction import Transaction
from repro.core.adversary import AdversaryBehavior, apply_adversary
from repro.crypto.dh import DHKeyPair, DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.masking import PairwiseMasker
from repro.datasets.loader import OwnerDataset
from repro.exceptions import ProtocolError
from repro.fl.client import DataOwner
from repro.fl.model import ModelParameters


class Participant:
    """One cross-silo organization: local data + DH keys + a miner node.

    The participant exposes exactly the operations the protocol needs:
    building its registration transactions, producing a masked update for a
    round, and (through :attr:`node`) the miner behaviours of proposing and
    verifying blocks.
    """

    def __init__(
        self,
        data: OwnerDataset,
        n_classes: int,
        network: Network,
        runtime_factory: Callable[[], ContractRuntime],
        dh_params: DHParameters,
        codec: FixedPointCodec,
        local_epochs: int = 1,
        learning_rate: float = 0.5,
        l2: float = 1e-4,
        batch_size: int | None = None,
        key_seed: int = 0,
        byzantine: bool = False,
        adversary: AdversaryBehavior | None = None,
        state_root_version: int = 1,
        gossip_max_retries: int = 2,
        gossip_retry_backoff: int = 2,
    ) -> None:
        self.owner_id = data.owner_id
        self.client = DataOwner(
            owner_id=data.owner_id,
            features=data.features,
            labels=data.labels,
            n_classes=n_classes,
            local_epochs=local_epochs,
            learning_rate=learning_rate,
            batch_size=batch_size,
            l2=l2,
        )
        self.dh_params = dh_params
        self.keypair = DHKeyPair.generate(dh_params, data.owner_id, seed=key_seed)
        self.codec = codec
        self.node = MinerNode(
            data.owner_id,
            network,
            runtime_factory,
            byzantine=byzantine,
            state_root_version=state_root_version,
            max_retries=gossip_max_retries,
            retry_backoff=gossip_retry_backoff,
        )
        self.adversary = adversary or AdversaryBehavior(kind="honest")
        self._peer_public_keys: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Setup-phase helpers
    # ------------------------------------------------------------------

    @property
    def public_key(self) -> int:
        """The Diffie–Hellman public key published on the registry."""
        return self.keypair.public_key

    def registration_transaction(self, nonce: int) -> Transaction:
        """The transaction registering this participant on the registry contract."""
        return Transaction(
            sender=self.owner_id,
            contract="registry",
            method="register_participant",
            args={"public_key": self.public_key, "role": "owner"},
            nonce=nonce,
        )

    def learn_peer_keys(self, public_keys: dict[str, int]) -> None:
        """Record every other participant's public key (read from the chain)."""
        self._peer_public_keys = {
            owner: int(key) for owner, key in public_keys.items() if owner != self.owner_id
        }

    # ------------------------------------------------------------------
    # Training-phase behaviour
    # ------------------------------------------------------------------

    def train_local(self, global_parameters: ModelParameters, round_number: int) -> ModelParameters:
        """Run local training from the global model and apply any adversarial tampering."""
        update = self.client.local_train(global_parameters, round_number)
        return apply_adversary(update.parameters, self.adversary)

    def masked_update_transaction(
        self,
        local_parameters: ModelParameters,
        round_number: int,
        group: list[str],
        group_id: int,
        nonce: int,
        shard: list[str] | None = None,
        shard_id: int | None = None,
    ) -> Transaction:
        """Mask the local model against the round's mask cohort and build the submit tx.

        Masks are pairwise within the mask cohort: the set of owners whose
        payloads are summed together on chain, so only their masks must
        cancel.  Under the flat topology that is the whole group; under the
        sharded topology the caller passes the owner's shard (a subset of the
        group) and its claimed ``shard_id``, cutting the per-client mask count
        from O(group) to O(shard).
        """
        mask_cohort = group if shard is None else shard
        if (shard is None) != (shard_id is None):
            raise ProtocolError("shard and shard_id must be provided together")
        if self.owner_id not in mask_cohort:
            raise ProtocolError(f"{self.owner_id} asked to mask for a cohort it does not belong to")
        if shard is not None and any(peer not in group for peer in shard):
            raise ProtocolError(f"{self.owner_id}'s shard is not a subset of its group")
        missing = [
            peer for peer in mask_cohort if peer != self.owner_id and peer not in self._peer_public_keys
        ]
        if missing:
            raise ProtocolError(f"{self.owner_id} is missing public keys for peers: {missing}")
        cohort_keys = {
            peer: self._peer_public_keys[peer] for peer in mask_cohort if peer != self.owner_id
        }
        masker = PairwiseMasker(self.owner_id, self.keypair, cohort_keys, codec=self.codec)
        masked = masker.mask(local_parameters.to_vector(), round_number, group_id=group_id)
        args = {
            "round_number": round_number,
            "group_id": group_id,
            "payload": np.asarray(masked.payload, dtype=np.uint64),
            "n_samples": self.client.n_samples,
        }
        if shard_id is not None:
            args["shard_id"] = int(shard_id)
        return Transaction(
            sender=self.owner_id,
            contract="fl_training",
            method="submit_masked_update",
            args=args,
            nonce=nonce,
        )

    def evaluate_model(self, parameters: ModelParameters) -> dict[str, float]:
        """Local evaluation of a (global) model on this participant's data."""
        return self.client.evaluate(parameters)
