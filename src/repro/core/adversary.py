"""Adversarial participant behaviours (future work §VI, item 2).

The paper leaves "the effects of adversarial participants on the Shapley value
calculation" to future work.  These behaviours model the standard update-level
attacks studied in the robust-FL literature and are applied to a participant's
*local model* before masking, so the rest of the pipeline (secure aggregation,
GroupSV) is exercised unchanged:

* ``scale`` — multiply the update by a large factor (model-boosting attack);
* ``noise`` — replace the update with random noise (free-rider submitting junk);
* ``zero`` — submit a zero update (free-rider submitting nothing);
* ``sign_flip`` — negate the update (a simple poisoning attack).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters
from repro.utils.rng import spawn_rng

_BEHAVIORS = ("honest", "scale", "noise", "zero", "sign_flip")


@dataclass(frozen=True)
class AdversaryBehavior:
    """An adversarial update transformation.

    Attributes:
        kind: one of ``honest``, ``scale``, ``noise``, ``zero``, ``sign_flip``.
        magnitude: behaviour-specific strength (scale factor or noise std).
        seed: seed for the noise behaviour.
    """

    kind: str = "honest"
    magnitude: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _BEHAVIORS:
            raise ValidationError(f"unknown adversary kind {self.kind!r}; choose from {_BEHAVIORS}")
        if self.magnitude < 0:
            raise ValidationError("magnitude must be non-negative")


def apply_adversary(parameters: ModelParameters, behavior: AdversaryBehavior) -> ModelParameters:
    """Transform a local model according to the adversarial behaviour."""
    if behavior.kind == "honest":
        return parameters
    vector = parameters.to_vector()
    if behavior.kind == "scale":
        tampered = vector * behavior.magnitude
    elif behavior.kind == "zero":
        tampered = np.zeros_like(vector)
    elif behavior.kind == "sign_flip":
        tampered = -vector
    elif behavior.kind == "noise":
        rng = spawn_rng("adversary-noise", behavior.seed, vector.size)
        tampered = rng.normal(0.0, max(behavior.magnitude, 1e-12), size=vector.shape)
    else:  # pragma: no cover - guarded by __post_init__
        raise ValidationError(f"unknown adversary kind {behavior.kind!r}")
    return parameters.from_vector(tampered)
