"""Protocol configuration: everything the owners agree on at the setup stage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters pinned on the registry contract before training starts.

    Attributes:
        n_owners: number of participating data owners.
        n_groups: GroupSV group count ``m`` (1 ≤ m ≤ n_owners).
        n_rounds: number of federated rounds ``R``.
        permutation_seed: the shared seed ``e`` driving per-round groupings.
        local_epochs: local gradient-descent epochs per round.
        learning_rate: local learning rate.
        l2: L2 regularization strength for the logistic-regression model.
        batch_size: local mini-batch size (None = full batch).
        precision_bits / field_bits: fixed-point codec parameters for masking.
        dh_bits: size of the Diffie–Hellman group used in simulation (small
            safe-prime groups keep tests fast; use >= 2048 in production).
        reward_pool: tokens distributed proportionally to contributions at the end.
        byzantine_miners: node ids that vote dishonestly during verification.
        sv_assembly_version: which exact-SV assembly the contribution contract
            (and auditors) run over the group game's utility table.  Version 1
            is the scalar reference formula — bit-for-bit identical to the
            historical receipts.  Version 2 is the vectorized bitmask assembly
            (:func:`repro.shapley.engine.exact_shapley_from_utility_vector`),
            mathematically identical and much faster for large ``m`` but with
            a different floating-point summation order, so receipts may differ
            in the last ulps.  Pinned on chain at setup: every miner and every
            auditor replays the same assembly.
        state_root_version: which state commitment block headers carry.
            Version 1 is the historical flat hash of the whole state dict —
            byte-identical block hashes to pre-Merkle chains, O(all keys) per
            block.  Version 2 is the incrementally maintained Merkle root
            (per-namespace bucket trees; O(keys changed) per block) that also
            supports per-entry inclusion proofs
            (:meth:`repro.blockchain.state.WorldState.prove`), letting any
            participant check its published contribution or settlement entry
            against a block header alone.  Version 3 is the same Merkle
            commitment with adaptive per-namespace bucketing: identical roots
            to version 2 until a namespace outgrows the fixed 1024-bucket
            layout, at which point the layout widens (in powers of two, as a
            pure function of the key count) so the O(Δ) root holds at
            six-figure key counts.  The version changes every header,
            so — like ``sv_assembly_version`` — it is pinned on the registry
            at setup: every miner and every auditor commits and verifies the
            same root format.  The *storage backend* under the chain
            (``repro.blockchain.storage``) is by contrast purely off-chain:
            it never appears in :meth:`on_chain_params` and cannot change
            chain hashes.
        gossip_max_retries: bounded retry budget per gossip recipient (tx and
            commit broadcasts) when the transport can lose messages.  A
            delivery-layer knob only — it never appears in
            :meth:`on_chain_params`, so tuning it cannot change chain hashes.
        gossip_retry_backoff: initial backoff between retry sweeps in
            simulated ticks, doubled per sweep (recorded for reporting; the
            single-threaded simulation does not sleep).  Off-chain like
            ``gossip_max_retries``.
        round_retries: how many times the scheduler re-attempts a round whose
            block could not commit under delivery faults (e.g. mid-partition).
            An aborted attempt touches nothing, so the retry re-stages the
            identical round.  Off-chain; fault scenarios may raise it further.
        authority_rotation: when True, training-round blocks are proposed
            under the epoch-authority schedule — the eligible proposers of
            round ``r`` are the registry's ``active_cohort(r)``, rotated
            deterministically from the epoch start, with view-change failover
            past silent or rejected leaders; the winning view number is hashed
            into each round block's header so miners and auditors recompute
            the schedule from chain state.  Off (the default) keeps the static
            round-robin over the full replica set and byte-identical chains:
            headers carry no view and hash exactly as before.  Pinned on chain
            at setup like every other consensus-relevant parameter.
        aggregation_topology: ``"flat"`` (the default) masks every update
            against the whole aggregation group — O(group) pairwise masks per
            client.  ``"sharded"`` splits each group into committees of at
            most ``shard_size`` members (:mod:`repro.crypto.sharding`), masks
            within the committee only — O(shard_size) masks per client — and
            sums the shard aggregates; ring arithmetic makes the decoded
            group model bit-identical to the flat path.  Consensus-relevant
            (it changes which submissions are valid and what the round block
            records), so it is pinned on the registry; flat chains pin
            nothing extra and keep byte-identical hashes.
        shard_size: committee size for the sharded topology (≥ 2; ``None``
            under the flat topology).  Pinned alongside
            ``aggregation_topology``.
        sv_estimator: ``"exact"`` (the default) runs the pinned exact-SV
            assembly over the full 2^m group game.  ``"sampled"`` runs the
            stratified + truncated permutation estimator
            (:mod:`repro.shapley.estimator`) whose receipts carry
            ``(estimate, half_width, n_samples, seed)`` — the audit re-runs
            the estimator from the chain-derived seed and checks the stored
            values lie within the stored bounds instead of exact equality.
            This is what retires the ``MAX_PLAYERS`` ceiling for large group
            counts.  Pinned on the registry; exact chains pin nothing extra.
        sv_samples: permutations the sampled estimator draws per round
            (rounded up to a whole number of size-m stratification blocks).
            Pinned alongside ``sv_estimator``.
        sv_workers: worker processes for the sampled estimator's batched
            committee scoring (``None``/1 = in-process serial).  A pure
            wall-clock knob, like the gossip retry knobs: the batched
            estimator is bit-identical at any worker count, so this is
            **never** pinned in :meth:`on_chain_params` — two miners with
            different worker counts still produce byte-identical receipts,
            and the audit may choose its own count.
    """

    n_owners: int = 9
    n_groups: int = 3
    n_rounds: int = 3
    permutation_seed: int = 13
    local_epochs: int = 1
    learning_rate: float = 0.5
    l2: float = 1e-4
    batch_size: int | None = None
    precision_bits: int = 24
    field_bits: int = 64
    dh_bits: int = 64
    reward_pool: float = 1000.0
    byzantine_miners: tuple[str, ...] = field(default_factory=tuple)
    sv_assembly_version: int = 1
    state_root_version: int = 1
    authority_rotation: bool = False
    gossip_max_retries: int = 2
    gossip_retry_backoff: int = 2
    round_retries: int = 0
    aggregation_topology: str = "flat"
    shard_size: int | None = None
    sv_estimator: str = "exact"
    sv_samples: int = 128
    sv_workers: int | None = None

    def __post_init__(self) -> None:
        if self.n_owners < 2:
            raise ConfigurationError("the protocol needs at least two data owners")
        if not 1 <= self.n_groups <= self.n_owners:
            raise ConfigurationError("n_groups must be in [1, n_owners]")
        if self.n_rounds < 1:
            raise ConfigurationError("n_rounds must be positive")
        if self.local_epochs < 1:
            raise ConfigurationError("local_epochs must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.reward_pool < 0:
            raise ConfigurationError("reward_pool must be non-negative")
        if self.sv_assembly_version not in (1, 2):
            raise ConfigurationError("sv_assembly_version must be 1 (scalar) or 2 (vectorized)")
        if self.state_root_version not in (1, 2, 3):
            raise ConfigurationError(
                "state_root_version must be 1 (flat hash), 2 (Merkle), "
                "or 3 (Merkle with adaptive bucketing)"
            )
        if self.gossip_max_retries < 0:
            raise ConfigurationError("gossip_max_retries must be non-negative")
        if self.gossip_retry_backoff < 1:
            raise ConfigurationError("gossip_retry_backoff must be at least 1 tick")
        if self.round_retries < 0:
            raise ConfigurationError("round_retries must be non-negative")
        if self.aggregation_topology not in ("flat", "sharded"):
            raise ConfigurationError("aggregation_topology must be 'flat' or 'sharded'")
        if self.aggregation_topology == "sharded":
            if self.shard_size is None or self.shard_size < 2:
                raise ConfigurationError(
                    "the sharded topology requires shard_size >= 2 "
                    "(a singleton shard would submit an unmasked update)"
                )
        elif self.shard_size is not None:
            raise ConfigurationError("shard_size is only meaningful with aggregation_topology='sharded'")
        if self.sv_estimator not in ("exact", "sampled"):
            raise ConfigurationError("sv_estimator must be 'exact' or 'sampled'")
        if self.sv_samples < 2:
            raise ConfigurationError("sv_samples must be at least 2 (sample variance needs it)")
        if self.sv_workers is not None:
            if self.sv_workers < 1:
                raise ConfigurationError("sv_workers must be at least 1 when set")
            if self.sv_estimator != "sampled":
                raise ConfigurationError(
                    "sv_workers only applies to the sampled estimator "
                    "(the exact assembly is a single vectorized pass)"
                )

    def on_chain_params(self, model_dimension: int) -> dict[str, Any]:
        """The parameter dict pinned on the registry contract.

        New consensus-relevant knobs are included only when they differ from
        their defaults, so chains that never use them keep byte-identical
        parameter records (and thus block hashes) with pre-knob chains.
        """
        params = {
            "n_owners": self.n_owners,
            "n_groups": self.n_groups,
            "n_rounds": self.n_rounds,
            "permutation_seed": self.permutation_seed,
            "precision_bits": self.precision_bits,
            "field_bits": self.field_bits,
            "max_summands": max(256, self.n_owners * 2),
            "model_dimension": model_dimension,
            "local_epochs": self.local_epochs,
            "learning_rate": self.learning_rate,
            "l2": self.l2,
            "sv_assembly_version": self.sv_assembly_version,
            "state_root_version": self.state_root_version,
            "authority_rotation": bool(self.authority_rotation),
        }
        if self.aggregation_topology != "flat":
            params["aggregation_topology"] = self.aggregation_topology
            params["shard_size"] = int(self.shard_size)
        if self.sv_estimator != "exact":
            params["sv_estimator"] = self.sv_estimator
            params["sv_samples"] = int(self.sv_samples)
        return params
