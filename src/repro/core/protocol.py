"""The end-to-end protocol: blockchain-based secure FL with on-chain GroupSV.

:class:`BlockchainFLProtocol` wires every substrate together and follows the
procedure of Section IV.B:

1. **Setup** — the owners pin the agreed parameters (FL hyper-parameters,
   secure-aggregation codec, permutation seed ``e``, group count ``m``) on the
   registry contract and register their Diffie–Hellman public keys.
2. **Training rounds** — at each round ``r`` every owner trains locally from
   the current global model, masks its local model against its GroupSV group
   cohort, and submits the masked update.  The round's leader proposes a block
   containing all submissions plus the ``finalize_round`` (secure aggregation)
   and ``evaluate_round`` (Algorithm 1) calls; all miners re-execute and vote.
3. **Completion** — per-round contributions accumulate on chain
   (``v_i = Σ_r v_i^r``) and the reward contract converts them into payouts.

The result object exposes everything the experiments need: per-round
contributions, totals, the global model, chain statistics, and the chain itself
for transparency audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.blockchain.consensus import ConsensusEngine, LeaderSelector, VerificationResult
from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.contracts.contribution import ContributionContract
from repro.blockchain.contracts.fl_training import FLTrainingContract
from repro.blockchain.contracts.registry import ParticipantRegistryContract
from repro.blockchain.contracts.reward import RewardContract
from repro.blockchain.network import Network
from repro.blockchain.transaction import Transaction
from repro.core.adversary import AdversaryBehavior
from repro.core.config import ProtocolConfig
from repro.core.participant import Participant
from repro.crypto.dh import DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.datasets.loader import OwnerDataset
from repro.exceptions import ProtocolError, RoundError, SetupError
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.model import ModelParameters
from repro.shapley.group import group_members, make_groups


@dataclass
class RoundResult:
    """What one on-chain round produced."""

    round_number: int
    groups: tuple[tuple[str, ...], ...]
    user_values: dict[str, float]
    group_values: tuple[float, ...]
    global_utility: float
    global_parameters: ModelParameters
    consensus: VerificationResult | None = None


@dataclass
class ProtocolResult:
    """The outcome of a full protocol run."""

    rounds: list[RoundResult] = field(default_factory=list)
    total_contributions: dict[str, float] = field(default_factory=dict)
    reward_balances: dict[str, float] = field(default_factory=dict)
    final_parameters: ModelParameters | None = None
    chain_height: int = 0
    total_transactions: int = 0
    total_gas: int = 0
    network_stats: dict = field(default_factory=dict)

    def contributions_per_round(self) -> dict[str, list[float]]:
        """Per-owner time series of round contributions."""
        series: dict[str, list[float]] = {}
        for record in self.rounds:
            for owner, value in record.user_values.items():
                series.setdefault(owner, []).append(value)
        return series


class BlockchainFLProtocol:
    """Orchestrates the blockchain-based secure FL + contribution evaluation run."""

    def __init__(
        self,
        owner_data: Sequence[OwnerDataset],
        validation_features: np.ndarray,
        validation_labels: np.ndarray,
        n_classes: int,
        config: ProtocolConfig | None = None,
        adversaries: dict[str, AdversaryBehavior] | None = None,
        leader_selector: LeaderSelector | None = None,
    ) -> None:
        self.config = config or ProtocolConfig(n_owners=len(owner_data))
        if len(owner_data) != self.config.n_owners:
            raise ProtocolError(
                f"config expects {self.config.n_owners} owners but {len(owner_data)} datasets were given"
            )
        self.validation_features = np.asarray(validation_features, dtype=np.float64)
        self.validation_labels = np.asarray(validation_labels).ravel().astype(int)
        self.n_classes = int(n_classes)
        self.n_features = int(self.validation_features.shape[1])

        template = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.config.l2)
        self._template_parameters = template.parameters
        self.model_dimension = self._template_parameters.dimension

        self.network = Network()
        self._runtime_factory = self._build_runtime_factory()
        self.consensus = ConsensusEngine(leader_selector)
        dh_params = DHParameters.for_testing(bits=self.config.dh_bits, seed=self.config.permutation_seed)
        codec = FixedPointCodec(
            precision_bits=self.config.precision_bits,
            field_bits=self.config.field_bits,
            max_summands=max(256, self.config.n_owners * 2),
        )
        adversaries = adversaries or {}
        self.participants: dict[str, Participant] = {}
        for data in owner_data:
            participant = Participant(
                data=data,
                n_classes=self.n_classes,
                network=self.network,
                runtime_factory=self._runtime_factory,
                dh_params=dh_params,
                codec=codec,
                local_epochs=self.config.local_epochs,
                learning_rate=self.config.learning_rate,
                l2=self.config.l2,
                batch_size=self.config.batch_size,
                key_seed=self.config.permutation_seed,
                byzantine=data.owner_id in self.config.byzantine_miners,
                adversary=adversaries.get(data.owner_id),
            )
            self.participants[data.owner_id] = participant
        self.owner_ids = sorted(self.participants)
        self._nonces = {owner: 0 for owner in self.owner_ids}
        self._setup_done = False

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def _build_runtime_factory(self):
        """A factory producing identical contract runtimes on every miner."""
        validation_features = self.validation_features
        validation_labels = self.validation_labels
        n_classes = self.n_classes

        def factory() -> ContractRuntime:
            runtime = ContractRuntime()
            runtime.register(ParticipantRegistryContract())
            runtime.register(FLTrainingContract())
            runtime.register(ContributionContract(validation_features, validation_labels, n_classes))
            runtime.register(RewardContract())
            return runtime

        return factory

    def _next_nonce(self, owner_id: str) -> int:
        nonce = self._nonces[owner_id]
        self._nonces[owner_id] = nonce + 1
        return nonce

    def _submit(self, tx: Transaction) -> None:
        """Submit a transaction through its sender's own node (gossips to all)."""
        self.participants[tx.sender].node.submit_transaction(tx)

    def _commit_block(self) -> VerificationResult:
        """Run one consensus round: leader proposes all pending txs, miners vote."""
        leader_id = self.consensus.select_leader(self.owner_ids)
        leader = self.participants[leader_id]
        return leader.node.run_consensus_round(self.consensus, self.owner_ids)

    def _reference_chain(self):
        """Any honest replica (the first owner's chain) used for reads."""
        return self.participants[self.owner_ids[0]].node.chain

    # ------------------------------------------------------------------
    # Phase 1: setup
    # ------------------------------------------------------------------

    def setup(self) -> VerificationResult:
        """Pin protocol parameters and register every participant on chain."""
        if self._setup_done:
            raise SetupError("setup has already been executed")
        initiator = self.owner_ids[0]
        params_tx = Transaction(
            sender=initiator,
            contract="registry",
            method="set_protocol_params",
            args={"params": self.config.on_chain_params(self.model_dimension)},
            nonce=self._next_nonce(initiator),
        )
        self._submit(params_tx)
        for owner_id in self.owner_ids:
            participant = self.participants[owner_id]
            self._submit(participant.registration_transaction(self._next_nonce(owner_id)))
        result = self._commit_block()

        chain = self._reference_chain()
        registered = {}
        for owner_id in chain.state.get("registry", "participant_index", []):
            record = chain.state.get("registry", f"participant/{owner_id}")
            registered[owner_id] = int(record["public_key"])
        missing = sorted(set(self.owner_ids) - set(registered))
        if missing:
            raise SetupError(f"registration did not complete for: {missing}")
        for participant in self.participants.values():
            participant.learn_peer_keys(registered)
        self._setup_done = True
        return result

    # ------------------------------------------------------------------
    # Phase 2: training + evaluation rounds
    # ------------------------------------------------------------------

    def run_round(self, round_number: int, global_parameters: ModelParameters) -> RoundResult:
        """Execute one full on-chain round (train, mask, aggregate, evaluate)."""
        if not self._setup_done:
            raise ProtocolError("setup() must run before training rounds")
        groups = make_groups(
            self.owner_ids, self.config.n_groups, self.config.permutation_seed, round_number
        )
        membership = group_members(groups)

        # Local training and masked submissions (one transaction per owner).
        for owner_id in self.owner_ids:
            participant = self.participants[owner_id]
            local_parameters = participant.train_local(global_parameters, round_number)
            group_id = membership[owner_id]
            tx = participant.masked_update_transaction(
                local_parameters,
                round_number,
                group=list(groups[group_id]),
                group_id=group_id,
                nonce=self._next_nonce(owner_id),
            )
            self._submit(tx)

        # The round's closing calls are submitted by the first owner; which owner
        # sends them does not matter because every miner re-executes them.
        closer = self.owner_ids[round_number % len(self.owner_ids)]
        finalize_tx = Transaction(
            sender=closer,
            contract="fl_training",
            method="finalize_round",
            args={"round_number": round_number},
            nonce=self._next_nonce(closer),
        )
        evaluate_tx = Transaction(
            sender=closer,
            contract="contribution",
            method="evaluate_round",
            args={"round_number": round_number},
            nonce=self._next_nonce(closer),
        )
        self._submit(finalize_tx)
        self._submit(evaluate_tx)
        consensus_result = self._commit_block()

        chain = self._reference_chain()
        round_record = chain.state.get("fl_training", f"round/{round_number}")
        evaluation = chain.state.get("contribution", f"evaluation/{round_number}")
        if round_record is None or evaluation is None:
            raise RoundError(f"round {round_number} did not finalize or evaluate on chain")
        global_vector = np.asarray(round_record["global_model"], dtype=np.float64)
        new_global = self._template_parameters.from_vector(global_vector)
        return RoundResult(
            round_number=round_number,
            groups=tuple(tuple(group) for group in round_record["groups"]),
            user_values=dict(evaluation["user_values"]),
            group_values=tuple(evaluation["group_values"]),
            global_utility=float(evaluation["global_utility"]),
            global_parameters=new_global,
            consensus=consensus_result,
        )

    # ------------------------------------------------------------------
    # Phase 3: the full run
    # ------------------------------------------------------------------

    def run(self) -> ProtocolResult:
        """Run setup, every training round, and the final reward distribution."""
        result = ProtocolResult()
        if not self._setup_done:
            self.setup()
        global_parameters = self._template_parameters
        for round_number in range(self.config.n_rounds):
            round_result = self.run_round(round_number, global_parameters)
            global_parameters = round_result.global_parameters
            result.rounds.append(round_result)

        # Final reward distribution.
        closer = self.owner_ids[0]
        reward_tx = Transaction(
            sender=closer,
            contract="reward",
            method="distribute",
            args={"reward_pool": self.config.reward_pool, "label": "final"},
            nonce=self._next_nonce(closer),
        )
        self._submit(reward_tx)
        self._commit_block()

        chain = self._reference_chain()
        result.total_contributions = dict(chain.state.get("contribution", "totals", {}))
        result.reward_balances = dict(chain.state.get("reward", "balances", {}))
        result.final_parameters = global_parameters
        result.chain_height = chain.height
        result.total_transactions = chain.total_transactions()
        result.total_gas = chain.total_gas()
        result.network_stats = self.network.stats.as_dict()
        return result
