"""The end-to-end protocol: blockchain-based secure FL with on-chain GroupSV.

:class:`BlockchainFLProtocol` wires every substrate together and follows the
procedure of Section IV.B:

1. **Setup** — the owners pin the agreed parameters (FL hyper-parameters,
   secure-aggregation codec, permutation seed ``e``, group count ``m``) on the
   registry contract and register their Diffie–Hellman public keys.
2. **Training rounds** — at each round ``r`` every owner trains locally from
   the current global model, masks its local model against its GroupSV group
   cohort, and submits the masked update.  The round's leader proposes a block
   containing all submissions plus the ``finalize_round`` (secure aggregation)
   and ``evaluate_round`` (Algorithm 1) calls; all miners re-execute and vote.
3. **Completion** — per-round contributions accumulate on chain
   (``v_i = Σ_r v_i^r``) and the reward contract converts them into payouts.

The round orchestration itself lives in :mod:`repro.core.pipeline`: a
:class:`~repro.core.pipeline.RoundScheduler` drives the staged pipeline
(Setup → LocalTraining → Masking/Submission → SecureAggregation → Evaluation
→ BlockProposal → Settlement) over a :class:`~repro.core.pipeline.RoundContext`
per round, with :class:`~repro.core.pipeline.Scenario` hooks for dropout,
stragglers, adversary injection, and late joins.  This class holds the wiring
(participants, network, contracts, nonces) and delegates every run to the
scheduler, so the CLI, examples, and benchmarks all share one scenario API.

The result object exposes everything the experiments need: per-round
contributions, totals, the global model, chain statistics, and the chain itself
for transparency audits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blockchain.consensus import (
    ConsensusEngine,
    EpochAuthoritySchedule,
    LeaderSelector,
    VerificationResult,
)
from repro.blockchain.contracts.base import ContractRuntime
from repro.blockchain.contracts.contribution import ContributionContract
from repro.blockchain.contracts.fl_training import FLTrainingContract
from repro.blockchain.contracts.registry import ParticipantRegistryContract
from repro.blockchain.contracts.reward import RewardContract
from repro.blockchain.network import Network
from repro.blockchain.storage import StorageBackend, open_backend
from repro.blockchain.transaction import Transaction
from repro.core.adversary import AdversaryBehavior
from repro.core.config import ProtocolConfig
from repro.core.participant import Participant
from repro.core.pipeline import (  # noqa: F401 - re-exported for compatibility
    ProtocolResult,
    RoundResult,
    RoundScheduler,
    Scenario,
)
from repro.crypto.dh import DHParameters
from repro.crypto.fixed_point import FixedPointCodec
from repro.datasets.loader import OwnerDataset
from repro.exceptions import ConsensusError, ProtocolError, RoundError, SetupError
from repro.fl.logistic_regression import LogisticRegressionModel


class BlockchainFLProtocol:
    """Orchestrates the blockchain-based secure FL + contribution evaluation run.

    The object is the wiring layer: it owns the participants (each a local
    trainer *and* a miner replica), the simulated network, the contract
    runtime factory, the consensus engine, and the off-chain nonce counters.
    Execution is delegated to :class:`~repro.core.pipeline.RoundScheduler` —
    ``run()`` / ``run_round()`` are thin wrappers — so the CLI, the examples,
    and the benchmarks all drive the same staged pipeline with the same
    :class:`~repro.core.pipeline.Scenario` hook surface.

    Args:
        owner_data: one :class:`~repro.datasets.loader.OwnerDataset` per
            genesis data owner (more can join mid-run via
            :meth:`add_participant` + a ``request_join`` transaction).
        validation_features / validation_labels: the public validation set the
            utility function scores against (known to every miner and auditor).
        n_classes: label count of the classification task.
        config: the :class:`~repro.core.config.ProtocolConfig` pinned on chain
            at setup; defaults to the paper's small configuration.
        adversaries: optional owner-id → behavior map applying model tampering
            on every round (for windowed attacks use
            :class:`~repro.core.pipeline.AdversaryInjectionScenario` instead).
        leader_selector: optional selector for setup/settlement blocks and,
            with ``config.authority_rotation`` off, for round blocks too.
            With rotation on, round blocks are led by the chain-state-derived
            :class:`~repro.blockchain.consensus.EpochAuthoritySchedule`.
        store: optional persistence backend for the reference replica — a
            :class:`~repro.blockchain.storage.StorageBackend` or a spec string
            (``"memory"``, ``"sqlite:PATH"``).  Strictly off-chain: chains are
            byte-identical with or without it.  A persistent store that
            already holds a committed chain is refused here — reopening one
            is :meth:`resume_from`'s job.
        allow_restore: internal flag set by :meth:`resume_from`; lets
            ``store`` restore an existing chain into the reference replica
            instead of being refused.

    Key read surfaces after a run: ``participants[owner].node.chain`` (any
    replica, e.g. for :func:`~repro.core.audit.audit_chain`),
    :meth:`active_cohort`, and :meth:`round_proposers` (rotation runs).
    """

    def __init__(
        self,
        owner_data: Sequence[OwnerDataset],
        validation_features: np.ndarray,
        validation_labels: np.ndarray,
        n_classes: int,
        config: ProtocolConfig | None = None,
        adversaries: dict[str, AdversaryBehavior] | None = None,
        leader_selector: LeaderSelector | None = None,
        store: StorageBackend | str | None = None,
        allow_restore: bool = False,
    ) -> None:
        self.config = config or ProtocolConfig(n_owners=len(owner_data))
        if len(owner_data) != self.config.n_owners:
            raise ProtocolError(
                f"config expects {self.config.n_owners} owners but {len(owner_data)} datasets were given"
            )
        self.validation_features = np.asarray(validation_features, dtype=np.float64)
        self.validation_labels = np.asarray(validation_labels).ravel().astype(int)
        self.n_classes = int(n_classes)
        self.n_features = int(self.validation_features.shape[1])

        template = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.config.l2)
        self._template_parameters = template.parameters
        self.model_dimension = self._template_parameters.dimension

        self.network = Network()
        self._runtime_factory = self._build_runtime_factory()
        schedule = None
        if self.config.authority_rotation:
            schedule = EpochAuthoritySchedule(lambda: self._reference_chain().state)
        self.consensus = ConsensusEngine(leader_selector, schedule=schedule)
        self._dh_params = DHParameters.for_testing(bits=self.config.dh_bits, seed=self.config.permutation_seed)
        self._codec = FixedPointCodec(
            precision_bits=self.config.precision_bits,
            field_bits=self.config.field_bits,
            max_summands=max(256, self.config.n_owners * 2),
        )
        self._adversaries = dict(adversaries or {})
        self.participants: dict[str, Participant] = {}
        for data in owner_data:
            self.participants[data.owner_id] = self._build_participant(data)
        self.owner_ids = sorted(self.participants)
        self._nonces = {owner: 0 for owner in self.owner_ids}
        self._setup_done = False
        self.storage: StorageBackend | None = None
        self._restored = False
        if store is not None:
            backend = open_backend(store)
            self.storage = backend
            self._restored = self._reference_chain().attach_storage(backend)
            if self._restored and not allow_restore:
                raise ProtocolError(
                    "the store already holds a committed chain; use "
                    "BlockchainFLProtocol.resume_from to reopen it (or point "
                    "--store at a fresh path)"
                )

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def _build_runtime_factory(self):
        """A factory producing identical contract runtimes on every miner.

        All miners share one evaluation backend (built from the off-chain
        ``sv_workers`` knob): the batched sampled estimator is bit-identical
        at any worker count, so sharing the pool costs nothing in consensus
        terms and avoids one process pool per replica.
        """
        from repro.shapley.backend import make_backend

        validation_features = self.validation_features
        validation_labels = self.validation_labels
        n_classes = self.n_classes
        self._evaluation_backend = make_backend(self.config.sv_workers)
        evaluation_backend = self._evaluation_backend

        def factory() -> ContractRuntime:
            runtime = ContractRuntime()
            runtime.register(ParticipantRegistryContract())
            runtime.register(FLTrainingContract())
            runtime.register(
                ContributionContract(
                    validation_features,
                    validation_labels,
                    n_classes,
                    evaluation_backend=evaluation_backend,
                )
            )
            runtime.register(RewardContract())
            return runtime

        return factory

    def _build_participant(self, data: OwnerDataset) -> Participant:
        """One participant wired against the shared network/codec/DH group."""
        return Participant(
            data=data,
            n_classes=self.n_classes,
            network=self.network,
            runtime_factory=self._runtime_factory,
            dh_params=self._dh_params,
            codec=self._codec,
            local_epochs=self.config.local_epochs,
            learning_rate=self.config.learning_rate,
            l2=self.config.l2,
            batch_size=self.config.batch_size,
            key_seed=self.config.permutation_seed,
            byzantine=data.owner_id in self.config.byzantine_miners,
            adversary=self._adversaries.get(data.owner_id),
            state_root_version=self.config.state_root_version,
            gossip_max_retries=self.config.gossip_max_retries,
            gossip_retry_backoff=self.config.gossip_retry_backoff,
        )

    def _next_nonce(self, owner_id: str) -> int:
        nonce = self._nonces[owner_id]
        self._nonces[owner_id] = nonce + 1
        return nonce

    def _submit(self, tx: Transaction) -> None:
        """Submit a transaction through its sender's own node (gossips to all)."""
        self.participants[tx.sender].node.submit_transaction(tx)

    def _redeliver_transactions(
        self, leader_id: str, txs: Sequence[Transaction]
    ) -> list[Transaction]:
        """Point-to-point redelivery of required txs a leader's mempool is missing.

        Gossip under a faulty transport may have dropped a transaction on the
        link to the would-be leader; before giving up on the leader the sender
        retries it directly (bounded by the sender's retry budget).  Returns
        the transactions that still could not be delivered.
        """
        from repro.blockchain.node import TOPIC_TRANSACTIONS
        from repro.blockchain.transport import DELIVERED

        leader_node = self.participants[leader_id].node
        missing = [tx for tx in txs if tx.tx_hash not in leader_node.mempool]
        still_missing = []
        for tx in missing:
            sender_node = self.participants[tx.sender].node
            delivered = False
            for _ in range(sender_node.max_retries + 1):
                self.network.stats.record_retries(TOPIC_TRANSACTIONS, 1)
                delivery = self.network.send_detailed(
                    tx.sender, leader_id, TOPIC_TRANSACTIONS, tx
                )
                if delivery.status == DELIVERED:
                    delivered = True
                    break
            if not delivered:
                still_missing.append(tx)
        return still_missing

    def _commit_block(
        self, required: Sequence[Transaction] | None = None
    ) -> VerificationResult:
        """Run one consensus round: leader proposes all pending txs, miners vote.

        Under a fault-injecting transport the commit fails over: a leader whose
        mempool is missing a required transaction (even after point-to-point
        redelivery) or whose proposal cannot reach quorum is skipped and the
        next round-robin leader tries, up to one full rotation.  With the
        deterministic transport this is exactly one attempt — byte-identical
        to the historical behaviour.
        """
        attempts = len(self.owner_ids) if self.network.faulty else 1
        last_error: ConsensusError | None = None
        for _ in range(attempts):
            leader_id = self.consensus.select_leader(self.owner_ids)
            if self.network.faulty and required:
                missing = self._redeliver_transactions(leader_id, required)
                if missing:
                    last_error = ConsensusError(
                        f"leader {leader_id} is missing {len(missing)} required "
                        "transaction(s) after redelivery"
                    )
                    continue
            leader = self.participants[leader_id]
            try:
                return leader.node.run_consensus_round(self.consensus, self.owner_ids)
            except ConsensusError as exc:
                last_error = exc
                continue
        raise last_error if last_error is not None else ConsensusError(
            "no leader could commit the block"
        )

    def round_proposers(self, round_number: int) -> list[str]:
        """The FL round's eligible proposers in view order (pure chain state).

        Only meaningful with ``authority_rotation`` on; the list is the
        round's active cohort rotated to start at the view-0 proposer, so
        index ``v`` is the leader the protocol falls back to after ``v`` view
        changes.
        """
        if self.consensus.schedule is None:
            raise ProtocolError("authority rotation is not enabled for this protocol")
        return self.consensus.schedule.proposers_for_round(round_number)

    def _commit_round_block(
        self,
        round_number: int,
        silent_leaders: frozenset[str] | set[str] = frozenset(),
        required: Sequence[Transaction] = (),
    ) -> tuple[VerificationResult, int, list[dict]]:
        """Commit an FL round's block under the epoch-authority schedule.

        Walks the round's view sequence: a silent scheduled leader (as declared
        by the scenario — the simulation's stand-in for a proposal timeout)
        advances the view without network traffic; a leader whose proposal the
        miner vote rejects — or, under a faulty transport, whose mempool is
        missing a ``required`` round transaction even after point-to-point
        redelivery (an incomplete leader block would seal failed secure-
        aggregation receipts) — advances it after the failed attempt.
        Returns the verification result, the winning view, and the view-change
        log.  Raises :class:`ConsensusError` when every view is exhausted.
        """
        proposers = self.round_proposers(round_number)
        view_changes: list[dict] = []
        for view, leader_id in enumerate(proposers):
            if leader_id in silent_leaders:
                view_changes.append({"view": view, "leader": leader_id, "reason": "silent"})
                continue
            if self.network.faulty and required:
                missing = self._redeliver_transactions(leader_id, required)
                if missing:
                    view_changes.append(
                        {
                            "view": view,
                            "leader": leader_id,
                            "reason": f"missing {len(missing)} round transaction(s)",
                        }
                    )
                    continue
            leader = self.participants[leader_id]
            try:
                result = leader.node.run_consensus_round(self.consensus, view=view)
            except ConsensusError as exc:
                view_changes.append({"view": view, "leader": leader_id, "reason": str(exc)})
                continue
            # Keep the engine's block counter in step with the chain so the
            # setup/settlement round-robin is unaffected by rotation.
            self.consensus.round_index += 1
            return result, view, view_changes
        detail = "; ".join(
            "view {view} {leader}: {reason}".format(**change) for change in view_changes
        )
        raise ConsensusError(
            f"round {round_number}: every scheduled proposer failed ({detail})"
        )

    def _reference_chain(self):
        """Any honest replica (the first owner's chain) used for reads."""
        return self.participants[self.owner_ids[0]].node.chain

    def resync_lagging_replicas(self) -> list[str]:
        """Catch up every replica that fell behind the reference head.

        Used after a partition heals: stranded nodes adopt the majority chain
        via the fast-sync recovery path
        (:meth:`~repro.blockchain.chain.Blockchain.catch_up_from`).  Returns
        the owners that resynced.
        """
        reference = self._reference_chain()
        resynced = []
        for owner_id in self.owner_ids:
            node = self.participants[owner_id].node
            if node.chain.height < reference.height and node.try_resync():
                resynced.append(owner_id)
        return resynced

    # ------------------------------------------------------------------
    # Phase 1: setup
    # ------------------------------------------------------------------

    def setup(self) -> VerificationResult:
        """Pin protocol parameters and register every participant on chain."""
        if self._setup_done:
            raise SetupError("setup has already been executed")
        initiator = self.owner_ids[0]
        params_tx = Transaction(
            sender=initiator,
            contract="registry",
            method="set_protocol_params",
            args={"params": self.config.on_chain_params(self.model_dimension)},
            nonce=self._next_nonce(initiator),
        )
        self._submit(params_tx)
        for owner_id in self.owner_ids:
            participant = self.participants[owner_id]
            self._submit(participant.registration_transaction(self._next_nonce(owner_id)))
        result = self._commit_block()

        chain = self._reference_chain()
        registered = set(chain.state.get("registry", "participant_index", []))
        missing = sorted(set(self.owner_ids) - registered)
        if missing:
            raise SetupError(f"registration did not complete for: {missing}")
        self.sync_peer_keys()
        self._setup_done = True
        return result

    # ------------------------------------------------------------------
    # Dynamic membership (cohort epochs)
    # ------------------------------------------------------------------

    def add_participant(self, data: OwnerDataset, sync: str = "fast") -> Participant:
        """Bring a new data owner online mid-run (idempotent by owner id).

        The participant gets a miner node synced from the reference replica
        and joins the consensus set.  It only enters the *training cohort*
        once its ``request_join`` transaction commits on the registry and the
        requested round boundary is reached.

        Args:
            data: the joining owner's local dataset.
            sync: ``"fast"`` (default) adopts the reference replica's blocks
                and state and checks every committed header's state commitment
                against the retained versions
                (:meth:`~repro.blockchain.chain.Blockchain.fast_sync_from`) —
                O(state + Δ·blocks) instead of re-running every contract call;
                ``"replay"`` re-executes every committed block, exactly as a
                trustless node catching up from raw block data would.  Both
                paths end in the identical state (pinned by tests).
        """
        if data.owner_id in self.participants:
            # An aborted round's nonce rewind may have dropped a mid-round
            # joiner's counter (its join never committed, so 0 is correct);
            # restore it so the idempotent path supports a clean retry.
            self._nonces.setdefault(data.owner_id, 0)
            return self.participants[data.owner_id]
        participant = self._build_participant(data)
        reference = self._reference_chain()
        if sync == "fast":
            participant.node.chain.fast_sync_from(reference)
        elif sync == "replay":
            for block in reference.blocks[1:]:
                participant.node.chain.verify_and_append(block)
        else:
            raise ProtocolError(f"unknown sync mode {sync!r} (expected 'fast' or 'replay')")
        self.participants[data.owner_id] = participant
        self.owner_ids = sorted(self.participants)
        self._nonces.setdefault(data.owner_id, 0)
        self.sync_peer_keys()
        return participant

    def active_cohort(self, round_number: int, at_height: int | None = None) -> list[str]:
        """The owner cohort active for a round, derived purely from chain state.

        ``at_height`` reads the registry through a historical state view
        (:meth:`~repro.blockchain.chain.Blockchain.state_at`) instead of the
        live head — e.g. the cohort exactly as the chain recorded it when a
        past round's block committed, without re-executing from genesis.
        Membership records are append-only interval lists whose boundaries
        all lie at or below their commit round, so the live head answers
        identically for any already-committed round; the view is there for
        auditors pinning a verdict to one specific header.
        """
        from repro.blockchain.contracts.registry import cohort_for_round_from_state

        chain = self._reference_chain()
        state = chain.state if at_height is None else chain.state_at(at_height)
        cohort = cohort_for_round_from_state(state, round_number)
        if not cohort:
            raise ProtocolError(f"no owners are active for round {round_number}")
        return cohort

    def sync_peer_keys(self) -> None:
        """Refresh every participant's peer-key table from the registry state.

        Idempotent; called when the cohort may have changed so pairwise masks
        can be derived against freshly joined owners' published keys.
        """
        chain = self._reference_chain()
        registered = {}
        for owner_id in chain.state.get("registry", "participant_index", []):
            record = chain.state.get("registry", f"participant/{owner_id}")
            if record is not None:
                registered[owner_id] = int(record["public_key"])
        for participant in self.participants.values():
            participant.learn_peer_keys(registered)

    # ------------------------------------------------------------------
    # Phase 2 + 3: rounds and the full run (via the stage pipeline)
    # ------------------------------------------------------------------

    def run_round(
        self,
        round_number: int,
        global_parameters,
        scenario: Scenario | None = None,
    ) -> RoundResult:
        """Execute one full on-chain round through the stage pipeline."""
        return RoundScheduler(self, scenario).run_round(round_number, global_parameters)

    def run(self, scenario: Scenario | None = None) -> ProtocolResult:
        """Run setup, every training round, and the final reward distribution.

        Args:
            scenario: optional :class:`~repro.core.pipeline.Scenario` steering
                the run (dropout, stragglers, adversary injection, late joins).
        """
        return RoundScheduler(self, scenario).run()

    # ------------------------------------------------------------------
    # Persistence lifecycle: close / resume
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the persistence backend (if any); idempotent.

        Every committed block is already durable (the backend commits
        per-block transactions), so closing mid-run models a clean shutdown:
        :meth:`resume_from` reopens to exactly the last sealed block.
        """
        if self.storage is not None:
            self.storage.close()
        backend = getattr(self, "_evaluation_backend", None)
        if backend is not None:
            backend.close()

    def completed_rounds(self) -> list[int]:
        """Round numbers whose training block committed on chain, sorted."""
        state = self._reference_chain().state
        return sorted(
            int(key.split("/", 1)[1])
            for key in state.keys("fl_training")
            if key.startswith("round/")
        )

    @classmethod
    def resume_from(
        cls,
        store: StorageBackend | str,
        owner_data: Sequence[OwnerDataset],
        validation_features: np.ndarray,
        validation_labels: np.ndarray,
        n_classes: int,
        config: ProtocolConfig | None = None,
        extra_data: Sequence[OwnerDataset] = (),
        **kwargs,
    ) -> "BlockchainFLProtocol":
        """Reopen a persisted chain and rebuild a live protocol around it.

        The caller supplies the same off-chain inputs the original run had —
        the genesis owners' datasets, the validation set, and the config (all
        deterministic from the run's seed) — plus ``extra_data``: datasets
        for owners that joined mid-run, so their participants can be rebuilt
        too.  The reference replica restores from the store (blocks, state
        with retained deltas, nonces — verified against the stored headers),
        every other replica fast-syncs from it, and the consensus rotation,
        nonce counters, and peer keys are realigned so the continued run is
        byte-identical to one that never stopped.
        """
        protocol = cls(
            owner_data,
            validation_features,
            validation_labels,
            n_classes,
            config,
            store=store,
            allow_restore=True,
            **kwargs,
        )
        if not protocol._restored:
            raise ProtocolError("the store holds no committed chain to resume from")
        protocol._adopt_restored_chain(extra_data)
        return protocol

    def _adopt_restored_chain(self, extra_data: Sequence[OwnerDataset]) -> None:
        """Realign the live wiring with the reference replica's restored chain."""
        reference = self._reference_chain()
        pinned = reference.state.get("registry", "protocol_params")
        if pinned is None:
            raise ProtocolError(
                "the restored chain has no pinned protocol parameters; "
                "it stopped before setup completed"
            )
        expected = self.config.on_chain_params(self.model_dimension)
        if pinned != expected:
            drift = sorted(
                key
                for key in set(pinned) | set(expected)
                if pinned.get(key) != expected.get(key)
            )
            raise ProtocolError(
                f"resume config disagrees with the chain's pinned parameters on: {drift}"
            )
        # Rebuild participants for owners that joined after genesis — their
        # datasets must come through extra_data (DH keys regenerate
        # deterministically from the pinned key seed).
        datasets = {data.owner_id: data for data in extra_data}
        for owner_id in reference.state.get("registry", "participant_index", []):
            if owner_id in self.participants:
                continue
            if owner_id not in datasets:
                raise ProtocolError(
                    f"owner {owner_id!r} is registered on the restored chain; "
                    "pass its dataset via extra_data to resume"
                )
            participant = self._build_participant(datasets[owner_id])
            participant.node.chain.fast_sync_from(reference)
            self.participants[owner_id] = participant
        self.owner_ids = sorted(self.participants)
        # Every genesis replica except the reference is still at genesis.
        for owner_id in self.owner_ids:
            node_chain = self.participants[owner_id].node.chain
            if node_chain is not reference and node_chain.height == 0:
                node_chain.fast_sync_from(reference)
        # Off-chain counters: the committed chain is the source of truth.
        self._nonces = {
            owner: reference._nonces.get(owner, 0) for owner in self.owner_ids
        }
        # One leader selection per committed non-genesis block keeps the
        # round-robin byte-identical to an uninterrupted run.
        self.consensus.round_index = reference.height
        self.sync_peer_keys()
        self._setup_done = True

    def resume_run(self, scenario: Scenario | None = None) -> ProtocolResult:
        """Continue a restored run to completion (remaining rounds + settlement).

        Picks up after the last committed training round: the global model is
        reconstructed from that round's published record, already-committed
        rounds are re-read from chain state into the result, the remaining
        rounds run through the ordinary stage pipeline, and settlement is
        submitted only if the chain has not settled yet.  On a deterministic
        transport the continued chain is byte-identical to one produced by an
        uninterrupted run.
        """
        from repro.core.pipeline import SettlementStage

        if not self._setup_done:
            raise ProtocolError("resume_run needs a restored protocol (see resume_from)")
        scheduler = RoundScheduler(self, scenario)
        chain = self._reference_chain()
        done = self.completed_rounds()
        result = ProtocolResult()
        global_parameters = self._template_parameters
        for round_number in done:
            round_result = self._round_result_from_chain(round_number)
            global_parameters = round_result.global_parameters
            result.rounds.append(round_result)
        for round_number in range(len(done), self.config.n_rounds):
            round_result = scheduler.run_round(round_number, global_parameters)
            global_parameters = round_result.global_parameters
            result.rounds.append(round_result)
        result.final_parameters = global_parameters
        if chain.state.get("reward", "distribution/final") is None:
            return SettlementStage().run(self, result, scheduler.scenario)
        # Already settled before the shutdown: report from chain state.
        result.total_contributions = dict(chain.state.get("contribution", "totals", {}))
        result.reward_balances = dict(chain.state.get("reward", "balances", {}))
        result.chain_height = chain.height
        result.total_transactions = chain.total_transactions()
        result.total_gas = chain.total_gas()
        result.network_stats = self.network.stats.as_dict()
        result.delivery_report = self.network.stats.delivery_report()
        return result

    def _round_result_from_chain(self, round_number: int) -> RoundResult:
        """Rebuild a committed round's :class:`RoundResult` from chain state alone."""
        state = self._reference_chain().state
        round_record = state.get("fl_training", f"round/{round_number}")
        evaluation = state.get("contribution", f"evaluation/{round_number}")
        if round_record is None or evaluation is None:
            raise ProtocolError(
                f"round {round_number} is missing its training or evaluation record"
            )
        global_vector = np.asarray(round_record["global_model"], dtype=np.float64)
        return RoundResult(
            round_number=round_number,
            groups=tuple(tuple(group) for group in round_record["groups"]),
            user_values=dict(evaluation["user_values"]),
            group_values=tuple(evaluation["group_values"]),
            global_utility=float(evaluation["global_utility"]),
            global_parameters=self._template_parameters.from_vector(global_vector),
            consensus=None,
            user_half_widths=dict(evaluation.get("user_half_widths", {})),
            estimator=evaluation.get("estimator"),
        )
