"""The staged round pipeline: Section IV.B as composable stages.

The protocol of the paper used to live in one monolithic ``run`` loop.  This
module decomposes it into explicit stages driven by a :class:`RoundScheduler`:

    Setup -> Sharding -> LocalTraining -> Masking/Submission
          -> SecureAggregation -> Evaluation -> Membership
          -> BlockProposal -> Settlement

Every stage reads and writes one :class:`RoundContext` — the complete state of
a round in flight (cohort, grouping, local models, staged transactions,
withheld submissions, rejections, consensus verdict).  Scenario behaviour
(dropout, stragglers, adversary injection, cohort joins/leaves, silent block
proposers) plugs in through the :class:`Scenario` hook interface instead of
bespoke orchestration loops, so ``examples/``, the CLI, and the benchmarks all
drive the very same runtime.  Each round's owner cohort is re-derived from chain state (the
registry's epoch view), so membership transactions committed in earlier
blocks change who trains, masks, and settles from their effective round on.

Two design rules keep scenario runs receipt-compatible with plain runs:

* **Staged submission barrier** — submission transactions are *built* during
  the Masking/Submission stage but only gossiped to the mempool at the
  BlockProposal stage, in canonical (sorted-owner) order.  A dropout that
  recovers or a straggler that arrives late therefore produces byte-identical
  blocks: arrival order in the mempool never depends on scenario timing.
* **Gossip-level validation** — a tampered submission (wrong group claim,
  wrong dimension) is rejected *before* it reaches the mempool, exactly as a
  real chain's nodes drop invalid transactions at admission.  The rejected
  owner's nonce is not consumed, so an honest re-submission slots into the
  block exactly where the original would have been.

The on-chain halves of SecureAggregation (``finalize_round``) and Evaluation
(``evaluate_round``) are deterministic contract calls; their stages *stage*
the transactions and the BlockProposal stage executes them inside the round's
single block, preserving the one-block-per-round chain layout of the paper's
protocol (and of every pre-pipeline chain receipt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.blockchain.consensus import VerificationResult
from repro.blockchain.contracts.registry import epochs_from_state, has_membership_events
from repro.blockchain.transaction import Transaction
from repro.core.adversary import AdversaryBehavior, apply_adversary
from repro.crypto.sharding import shard_cohort, shard_membership
from repro.exceptions import ConsensusError, ProtocolError, RoundError
from repro.fl.model import ModelParameters
from repro.shapley.group import group_members, make_groups

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import BlockchainFLProtocol
    from repro.datasets.loader import OwnerDataset


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass
class RoundResult:
    """What one on-chain round produced."""

    round_number: int
    groups: tuple[tuple[str, ...], ...]
    user_values: dict[str, float]
    group_values: tuple[float, ...]
    global_utility: float
    global_parameters: ModelParameters
    consensus: VerificationResult | None = None
    # Sampled-estimator rounds only: per-owner CI half-widths and the
    # estimator metadata recorded in the round's evaluation receipt.
    user_half_widths: dict[str, float] = field(default_factory=dict)
    estimator: dict[str, Any] | None = None


@dataclass
class ProtocolResult:
    """The outcome of a full protocol run."""

    rounds: list[RoundResult] = field(default_factory=list)
    total_contributions: dict[str, float] = field(default_factory=dict)
    reward_balances: dict[str, float] = field(default_factory=dict)
    final_parameters: ModelParameters | None = None
    chain_height: int = 0
    total_transactions: int = 0
    total_gas: int = 0
    network_stats: dict = field(default_factory=dict)
    # Per-topic delivery outcomes (attempted/delivered/dropped/duplicated/...)
    # from NetworkStats.delivery_report(); all-delivered under the default
    # deterministic transport.
    delivery_report: dict = field(default_factory=dict)
    # Dynamic-membership runs only: one entry per cohort epoch with the epoch's
    # round range, cohort, SV mass, and settled reward pool (empty otherwise).
    epoch_settlements: list[dict] = field(default_factory=list)

    def contributions_per_round(self) -> dict[str, list[float]]:
        """Per-owner time series of round contributions."""
        series: dict[str, list[float]] = {}
        for record in self.rounds:
            for owner, value in record.user_values.items():
                series.setdefault(owner, []).append(value)
        return series


# ----------------------------------------------------------------------
# Round context
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SubmissionRejection:
    """A submission dropped by gossip-level validation before the mempool."""

    owner_id: str
    round_number: int
    reason: str


@dataclass
class RoundContext:
    """Everything one round in flight carries between stages.

    Stages mutate the context in sequence; scenario hooks observe and steer it
    (withholding submissions, releasing them on later ticks, tampering with
    transaction arguments).  After the BlockProposal stage, :attr:`result`
    holds the round's :class:`RoundResult`.
    """

    round_number: int
    global_parameters: ModelParameters
    owner_ids: list[str]
    groups: tuple[tuple[str, ...], ...]
    membership: dict[str, int]
    max_wait_ticks: int = 8
    # Sharded-topology runs only (set by ShardingStage): per group, its
    # committees, plus owner -> (group index, shard index).  None / empty
    # under the flat topology.
    shards: tuple[tuple[tuple[str, ...], ...], ...] | None = None
    shard_assignment: dict[str, tuple[int, int]] = field(default_factory=dict)
    local_models: dict[str, ModelParameters] = field(default_factory=dict)
    submissions: dict[str, Transaction] = field(default_factory=dict)
    withheld: dict[str, str] = field(default_factory=dict)
    rejections: list[SubmissionRejection] = field(default_factory=list)
    closing_transactions: list[Transaction] = field(default_factory=list)
    ticks_waited: int = 0
    consensus: VerificationResult | None = None
    result: RoundResult | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def missing_owners(self) -> list[str]:
        """Owners whose submission has not been built or is still withheld."""
        return sorted(
            owner
            for owner in self.owner_ids
            if owner not in self.submissions or owner in self.withheld
        )

    def deliver(self, owner_id: str) -> None:
        """Release a withheld submission (the owner came back online)."""
        self.withheld.pop(owner_id, None)


# ----------------------------------------------------------------------
# Scenario hooks
# ----------------------------------------------------------------------

class Scenario:
    """Hook interface for steering a protocol run without a bespoke loop.

    Every hook is a no-op in the base class; concrete scenarios override the
    ones they need.  Hooks run at well-defined points of the stage pipeline:

    * :meth:`on_setup` — after the setup block commits.
    * :meth:`on_round_start` — once the :class:`RoundContext` exists (grouping
      known, nothing trained yet).
    * :meth:`transform_update` — per owner, after local training; may replace
      the local model (adversary injection, late-join placeholders).
    * :meth:`tamper_submission` — per owner, may rewrite the submission
      transaction's arguments (modelling a lying client); tampered args that
      fail gossip validation are rejected off-chain.
    * :meth:`withhold_submission` — per owner, return a reason string to keep
      a built submission out of the round for now (dropout, straggler).
    * :meth:`on_tick` — each simulated tick while submissions are missing;
      call :meth:`RoundContext.deliver` to bring owners back.
    * :meth:`on_rejection` — when gossip validation drops a submission.
    * :meth:`membership_transactions` — registry join/leave transactions to
      include in this round's block (they take effect at a later round
      boundary; see :class:`JoinScenario` / :class:`LeaveScenario`).
    * :meth:`leader_offline` — per scheduled proposer on rotation-enabled
      chains, return True to keep it silent for this round's proposal (the
      consensus falls through a view change to the next proposer; see
      :class:`LeaderDropoutScenario`).
    * :meth:`on_round_end` — after the round's block committed.
    * :meth:`on_settlement` — after the final reward distribution.

    A scenario whose behaviour only exists under the epoch-authority schedule
    sets :attr:`requires_authority_rotation`; the scheduler refuses to run it
    on a non-rotation protocol instead of silently degenerating to a plain
    run.  A scenario that expects delivery faults to abort whole rounds (e.g.
    a partition that only heals on a later attempt) sets :attr:`round_retries`
    — the scheduler re-attempts an aborted round that many extra times, and an
    aborted attempt touches nothing, so the retry re-stages the identical
    round.
    """

    requires_authority_rotation: bool = False
    round_retries: int = 0

    def on_setup(self, protocol: "BlockchainFLProtocol") -> None:
        """Called once after the setup block commits."""

    def on_round_start(self, ctx: RoundContext) -> None:
        """Called when a round's context has been created."""

    def transform_update(
        self, ctx: RoundContext, owner_id: str, parameters: ModelParameters
    ) -> ModelParameters:
        """Optionally replace an owner's freshly trained local model."""
        return parameters

    def tamper_submission(
        self, ctx: RoundContext, owner_id: str, args: dict[str, Any]
    ) -> dict[str, Any]:
        """Optionally rewrite the submission transaction arguments."""
        return args

    def withhold_submission(self, ctx: RoundContext, owner_id: str) -> str | None:
        """Return a reason to keep this owner's submission back, or None."""
        return None

    def on_tick(self, ctx: RoundContext) -> None:
        """Called once per simulated tick while submissions are missing."""

    def on_rejection(self, ctx: RoundContext, rejection: SubmissionRejection) -> None:
        """Called when gossip-level validation rejects a submission."""

    def membership_transactions(
        self, protocol: "BlockchainFLProtocol", ctx: RoundContext
    ) -> list[Transaction]:
        """Registry membership transactions to include in this round's block."""
        return []

    def leader_offline(self, ctx: RoundContext, leader_id: str) -> bool:
        """Return True to keep a scheduled proposer silent for this round.

        Only consulted on authority-rotation chains; a silent proposer costs a
        view change, and a round whose every scheduled proposer is silent
        aborts without touching the chain.
        """
        return False

    def on_round_end(self, ctx: RoundContext) -> None:
        """Called after the round's block has committed."""

    def on_settlement(self, result: ProtocolResult) -> None:
        """Called after the final reward distribution."""


class ComposedScenario(Scenario):
    """Run several scenarios side by side (hooks fire in list order)."""

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        self.scenarios = list(scenarios)
        self.requires_authority_rotation = any(
            scenario.requires_authority_rotation for scenario in scenarios
        )
        self.round_retries = max(
            (getattr(scenario, "round_retries", 0) for scenario in scenarios), default=0
        )

    def on_setup(self, protocol) -> None:
        for scenario in self.scenarios:
            scenario.on_setup(protocol)

    def on_round_start(self, ctx) -> None:
        for scenario in self.scenarios:
            scenario.on_round_start(ctx)

    def transform_update(self, ctx, owner_id, parameters):
        for scenario in self.scenarios:
            parameters = scenario.transform_update(ctx, owner_id, parameters)
        return parameters

    def tamper_submission(self, ctx, owner_id, args):
        for scenario in self.scenarios:
            args = scenario.tamper_submission(ctx, owner_id, args)
        return args

    def withhold_submission(self, ctx, owner_id):
        for scenario in self.scenarios:
            reason = scenario.withhold_submission(ctx, owner_id)
            if reason is not None:
                return reason
        return None

    def on_tick(self, ctx) -> None:
        for scenario in self.scenarios:
            scenario.on_tick(ctx)

    def on_rejection(self, ctx, rejection) -> None:
        for scenario in self.scenarios:
            scenario.on_rejection(ctx, rejection)

    def membership_transactions(self, protocol, ctx):
        transactions = []
        for scenario in self.scenarios:
            transactions.extend(scenario.membership_transactions(protocol, ctx))
        return transactions

    def leader_offline(self, ctx, leader_id) -> bool:
        return any(scenario.leader_offline(ctx, leader_id) for scenario in self.scenarios)

    def on_round_end(self, ctx) -> None:
        for scenario in self.scenarios:
            scenario.on_round_end(ctx)

    def on_settlement(self, result) -> None:
        for scenario in self.scenarios:
            scenario.on_settlement(result)


class DropoutScenario(Scenario):
    """An owner drops offline mid-round (after training, before submission).

    The owner's submission is withheld for ``offline_ticks`` simulated ticks,
    then delivered — modelling a transient disconnect with recovery.  Because
    submissions only reach the mempool at the BlockProposal barrier, the
    recovered round commits a block byte-identical to an undisturbed run.

    Delivery is reason-scoped: the scenario only releases a submission *it*
    withheld, so composing it with another scenario that holds the same owner
    back for different reasons cannot end the other outage early.
    """

    reason = "dropout"

    def __init__(self, owner_id: str, round_number: int = 0, offline_ticks: int = 2) -> None:
        if offline_ticks < 1:
            raise ProtocolError("offline_ticks must be at least 1")
        self.owner_id = owner_id
        self.round_number = int(round_number)
        self.offline_ticks = int(offline_ticks)

    def withhold_submission(self, ctx: RoundContext, owner_id: str) -> str | None:
        if owner_id == self.owner_id and ctx.round_number == self.round_number:
            return self.reason
        return None

    def on_tick(self, ctx: RoundContext) -> None:
        if (
            ctx.round_number == self.round_number
            and ctx.ticks_waited >= self.offline_ticks
            and ctx.withheld.get(self.owner_id) == self.reason
        ):
            ctx.deliver(self.owner_id)


class StragglerScenario(Scenario):
    """An owner is consistently slow: its submission arrives ``delay_ticks`` late.

    With ``delay_ticks`` below the context's ``max_wait_ticks`` the scheduler
    absorbs the delay and the chain is unchanged; above it the round aborts
    with a straggler timeout *before anything reaches the chain*.

    Like :class:`DropoutScenario`, delivery is reason-scoped: only a
    submission this scenario withheld is released on its schedule.
    """

    reason = "straggler"

    def __init__(self, owner_id: str, delay_ticks: int = 1, rounds: Sequence[int] | None = None) -> None:
        if delay_ticks < 1:
            raise ProtocolError("delay_ticks must be at least 1")
        self.owner_id = owner_id
        self.delay_ticks = int(delay_ticks)
        self.rounds = None if rounds is None else {int(r) for r in rounds}

    def _applies(self, round_number: int) -> bool:
        return self.rounds is None or round_number in self.rounds

    def withhold_submission(self, ctx: RoundContext, owner_id: str) -> str | None:
        if owner_id == self.owner_id and self._applies(ctx.round_number):
            return self.reason
        return None

    def on_tick(self, ctx: RoundContext) -> None:
        if (
            self._applies(ctx.round_number)
            and ctx.ticks_waited >= self.delay_ticks
            and ctx.withheld.get(self.owner_id) == self.reason
        ):
            ctx.deliver(self.owner_id)


class AdversarialSubmissionScenario(Scenario):
    """An owner lies about its group assignment in the submission transaction.

    Gossip-level validation rejects the tampered transaction before it can
    occupy a block slot (a real network's nodes drop invalid transactions at
    mempool admission), and the owner — unable to get the lie included —
    falls back to an honest submission with the same nonce.  The resulting
    chain is therefore identical to an all-honest run, while the rejection
    itself is recorded on the :class:`RoundContext` for reporting.
    """

    def __init__(self, owner_id: str, claimed_group: int | None = None, rounds: Sequence[int] | None = None) -> None:
        self.owner_id = owner_id
        self.claimed_group = claimed_group
        self.rounds = None if rounds is None else {int(r) for r in rounds}

    def tamper_submission(self, ctx: RoundContext, owner_id: str, args: dict[str, Any]) -> dict[str, Any]:
        if owner_id != self.owner_id:
            return args
        if self.rounds is not None and ctx.round_number not in self.rounds:
            return args
        honest_group = int(args["group_id"])
        claimed = self.claimed_group
        if claimed is None:
            claimed = (honest_group + 1) % len(ctx.groups)
        if claimed == honest_group:
            return args
        tampered = dict(args)
        tampered["group_id"] = int(claimed)
        return tampered


class LateJoinScenario(Scenario):
    """An owner joins the training effort only from ``join_round`` onwards.

    Before joining, the owner is registered (the contract requires a full
    cohort) but contributes no learning: it submits the unchanged global
    model instead of a trained update.  GroupSV then prices the missing
    signal — the late joiner's accumulated contribution trails its fully
    participating counterfactual.
    """

    def __init__(self, owner_id: str, join_round: int) -> None:
        self.owner_id = owner_id
        self.join_round = int(join_round)

    def transform_update(
        self, ctx: RoundContext, owner_id: str, parameters: ModelParameters
    ) -> ModelParameters:
        if owner_id == self.owner_id and ctx.round_number < self.join_round:
            return ctx.global_parameters
        return parameters


class JoinScenario(Scenario):
    """A brand-new owner joins the training cohort on chain at ``join_round``.

    Unlike :class:`LateJoinScenario` (which fakes a join by having a
    registered owner submit the unchanged global model), this scenario makes
    membership itself dynamic: in the block of round ``join_round - 1`` the
    newcomer broadcasts a ``request_join`` transaction carrying its
    Diffie–Hellman public key and the effective round boundary.  Once that
    block commits, every peer re-derives pairwise masks against the new key,
    and from ``join_round`` on the registry's ``active_cohort`` — and hence
    grouping, aggregation, and settlement — includes the joiner.  Rounds
    before the join settle without it: the joiner earns nothing for them.
    """

    def __init__(self, dataset: "OwnerDataset", join_round: int) -> None:
        if join_round < 1:
            raise ProtocolError("join_round must be at least 1 (round 0 is the genesis cohort)")
        self.dataset = dataset
        self.join_round = int(join_round)

    def membership_transactions(self, protocol, ctx) -> list[Transaction]:
        if ctx.round_number != self.join_round - 1:
            return []
        participant = protocol.add_participant(self.dataset)
        return [
            Transaction(
                sender=self.dataset.owner_id,
                contract="registry",
                method="request_join",
                args={
                    "public_key": participant.public_key,
                    "effective_round": self.join_round,
                    "role": "owner",
                },
                nonce=protocol._next_nonce(self.dataset.owner_id),
            )
        ]


class LeaveScenario(Scenario):
    """An owner exits the training cohort on chain at ``leave_round``.

    The owner broadcasts a ``request_leave`` transaction in the block of round
    ``leave_round - 1``; from ``leave_round`` on it is excluded from grouping,
    submission, and settlement (it earns nothing for rounds it sat out) while
    its node keeps mining — membership governs the training cohort, not the
    replica set.
    """

    def __init__(self, owner_id: str, leave_round: int) -> None:
        if leave_round < 1:
            raise ProtocolError("leave_round must be at least 1")
        self.owner_id = owner_id
        self.leave_round = int(leave_round)

    def membership_transactions(self, protocol, ctx) -> list[Transaction]:
        if ctx.round_number != self.leave_round - 1:
            return []
        return [
            Transaction(
                sender=self.owner_id,
                contract="registry",
                method="request_leave",
                args={"effective_round": self.leave_round},
                nonce=protocol._next_nonce(self.owner_id),
            )
        ]


class ChurnScenario(ComposedScenario):
    """Multiple joins and leaves across a run (composition of the two above).

    Args:
        joins: ``(dataset, join_round)`` pairs for owners entering the cohort.
        leaves: ``(owner_id, leave_round)`` pairs for owners exiting it.
    """

    def __init__(
        self,
        joins: Sequence[tuple["OwnerDataset", int]] = (),
        leaves: Sequence[tuple[str, int]] = (),
    ) -> None:
        scenarios: list[Scenario] = [JoinScenario(dataset, round_number) for dataset, round_number in joins]
        scenarios.extend(LeaveScenario(owner_id, round_number) for owner_id, round_number in leaves)
        if not scenarios:
            raise ProtocolError("ChurnScenario needs at least one join or leave event")
        super().__init__(scenarios)


class AdversaryInjectionScenario(Scenario):
    """Apply :class:`~repro.core.adversary.AdversaryBehavior` tampering per round.

    Unlike the participant-level ``adversaries`` mapping (which tampers every
    round), a scenario can scope the attack to a window of rounds — e.g. an
    owner that turns malicious halfway through training.
    """

    def __init__(
        self,
        behaviors: Mapping[str, AdversaryBehavior],
        start_round: int = 0,
        end_round: int | None = None,
    ) -> None:
        self.behaviors = dict(behaviors)
        self.start_round = int(start_round)
        self.end_round = None if end_round is None else int(end_round)

    def transform_update(
        self, ctx: RoundContext, owner_id: str, parameters: ModelParameters
    ) -> ModelParameters:
        behavior = self.behaviors.get(owner_id)
        if behavior is None or ctx.round_number < self.start_round:
            return parameters
        if self.end_round is not None and ctx.round_number > self.end_round:
            return parameters
        return apply_adversary(parameters, behavior)


class LeaderDropoutScenario(Scenario):
    """Scheduled block proposers go silent, forcing consensus view changes.

    Requires ``ProtocolConfig.authority_rotation``: with the epoch-authority
    schedule, each FL round has a deterministic proposer rotation derived from
    chain state, and this scenario keeps the named owners from proposing in
    the targeted rounds.  The consensus falls through one view change per
    silent proposer — recorded in the block header's view number, so the
    failover itself is auditable — while the silent owners keep *training and
    submitting* (a proposer outage is a consensus fault, not a data fault; to
    also drop their submissions, compose with :class:`DropoutScenario`).

    A round in which every scheduled proposer is offline aborts with
    :class:`~repro.exceptions.RoundError` before anything is gossiped: the
    chain, the mempools, and the nonce counters are untouched.

    Args:
        owner_ids: owners that will not propose (a single id is accepted).
        rounds: rounds the outage covers (None = every round).
    """

    requires_authority_rotation = True

    def __init__(self, owner_ids: Sequence[str] | str, rounds: Sequence[int] | None = None) -> None:
        self.owner_ids = {owner_ids} if isinstance(owner_ids, str) else set(owner_ids)
        if not self.owner_ids:
            raise ProtocolError("LeaderDropoutScenario needs at least one owner id")
        self.rounds = None if rounds is None else {int(r) for r in rounds}

    def leader_offline(self, ctx: RoundContext, leader_id: str) -> bool:
        if self.rounds is not None and ctx.round_number not in self.rounds:
            return False
        return leader_id in self.owner_ids


# ----------------------------------------------------------------------
# Fault-injection scenarios (transport layer)
# ----------------------------------------------------------------------

class FaultScenario(Scenario):
    """Base for scenarios that run the swarm over a fault-injecting transport.

    On setup (after the setup block commits — registration traffic stays
    clean and deterministic) the scenario swaps the protocol's network onto a
    :class:`~repro.blockchain.transport.FaultInjectingTransport` built from
    its seeded :class:`~repro.blockchain.transport.FaultPlan`.  At settlement
    it asserts the paper's convergence obligation: every remaining fault is
    healed, lagging replicas resync via the chain's fast-sync recovery path,
    every miner must hold the same head hash, and the reference chain must
    pass a full transparency audit (:func:`repro.core.audit.audit_chain`) —
    a healed swarm converges to one audited chain or the run fails loudly.
    """

    def __init__(self, plan: "FaultPlan | None" = None, round_retries: int = 0) -> None:
        from repro.blockchain.transport import FaultPlan

        self.plan = plan or FaultPlan()
        self.round_retries = int(round_retries)
        self.protocol: "BlockchainFLProtocol | None" = None
        self.transport: "FaultInjectingTransport | None" = None

    def on_setup(self, protocol: "BlockchainFLProtocol") -> None:
        from repro.blockchain.transport import FaultInjectingTransport

        self.protocol = protocol
        self.transport = protocol.network.install_transport(FaultInjectingTransport(self.plan))

    def on_settlement(self, result: ProtocolResult) -> None:
        protocol = self.protocol
        if protocol is None or self.transport is None:
            raise ProtocolError("fault scenario settled without on_setup having run")
        self.transport.heal_all()
        resynced = protocol.resync_lagging_replicas()
        heads = {
            owner: protocol.participants[owner].node.chain.head.block_hash
            for owner in protocol.owner_ids
        }
        if len(set(heads.values())) != 1:
            raise ProtocolError(
                f"swarm did not converge after heal: distinct heads {sorted(set(heads.values()))} "
                f"across {heads}"
            )
        from repro.core.audit import audit_chain

        report = audit_chain(
            protocol._reference_chain(),
            protocol.validation_features,
            protocol.validation_labels,
            protocol.n_classes,
        )
        if not report.passed:
            raise ProtocolError(
                f"post-heal transparency audit failed: {len(report.mismatches)} mismatch(es)"
            )
        # Resync traffic ran after the settlement stage snapshotted the stats;
        # refresh so the reported numbers include the recovery.
        result.network_stats = protocol.network.stats.as_dict()
        result.delivery_report = protocol.network.stats.delivery_report()
        result.network_stats.setdefault("resyncs", {})
        for owner in resynced:
            result.network_stats["resyncs"][owner] = list(
                protocol.participants[owner].node.resyncs
            )


class PartitionAndHealScenario(FaultScenario):
    """Split the swarm into cells for a round's first attempts, then heal.

    While the partition is open no leader can assemble the full submission
    set (secure aggregation needs every cohort member), so every scheduled
    proposer fails, the round aborts untouched, and the scheduler re-attempts
    it; once the partition heals the retry commits a block byte-identical to
    an undisturbed run's (pinned by tests).

    Args:
        round_number: the round whose first attempts run partitioned.
        heal_after_attempts: how many attempts fail before the heal.
        cells: explicit partition cells (default: the cohort split in half).
        plan: optional baseline fault plan (seed etc.) for the transport.
    """

    requires_authority_rotation = True

    def __init__(
        self,
        round_number: int = 1,
        heal_after_attempts: int = 1,
        cells: Sequence[Sequence[str]] | None = None,
        plan: "FaultPlan | None" = None,
    ) -> None:
        if heal_after_attempts < 1:
            raise ProtocolError("heal_after_attempts must be at least 1")
        super().__init__(plan=plan, round_retries=heal_after_attempts + 1)
        self.round_number = int(round_number)
        self.heal_after_attempts = int(heal_after_attempts)
        self.cells = None if cells is None else tuple(tuple(cell) for cell in cells)
        self._attempts_seen = 0
        self.partition_name = "partition:split"

    def _default_cells(self) -> tuple[tuple[str, ...], ...]:
        owners = self.protocol.owner_ids
        half = max(1, len(owners) // 2)
        return (tuple(owners[:half]), tuple(owners[half:]))

    def on_round_start(self, ctx: RoundContext) -> None:
        from repro.blockchain.transport import PartitionSpec

        if ctx.round_number != self.round_number:
            return
        if self._attempts_seen < self.heal_after_attempts:
            cells = self.cells or self._default_cells()
            self.transport.set_partition(PartitionSpec(self.partition_name, cells))
        else:
            self.transport.heal(self.partition_name)
        self._attempts_seen += 1


class EclipseScenario(FaultScenario):
    """One victim is eclipsed: honest peers' messages to it are all blocked.

    The partition is *inbound-only*: the victim's own submissions still reach
    the leaders (rounds finalize on schedule for everyone else), but it sees
    no proposals or commits and silently falls behind the swarm.  When the
    eclipse lifts, the victim detects the gap from the next message above its
    height (or the post-run convergence sweep) and resyncs from an honest
    peer via the chain's fast-sync recovery path — ending byte-identical to
    the replicas that never left.

    The victim must not be the protocol's reference replica (the first sorted
    owner), which the convergence checks and auditors read from.
    """

    requires_authority_rotation = True

    def __init__(
        self,
        victim: str,
        rounds: Sequence[int] = (1,),
        plan: "FaultPlan | None" = None,
    ) -> None:
        super().__init__(plan=plan, round_retries=1)
        self.victim = victim
        self.rounds = {int(r) for r in rounds}
        if not self.rounds:
            raise ProtocolError("EclipseScenario needs at least one target round")
        self.partition_name = f"eclipse:{victim}"

    def on_setup(self, protocol: "BlockchainFLProtocol") -> None:
        super().on_setup(protocol)
        if self.victim not in protocol.owner_ids:
            raise ProtocolError(f"eclipse victim {self.victim!r} is not a participant")
        if self.victim == protocol.owner_ids[0]:
            raise ProtocolError(
                "the eclipse victim cannot be the reference replica "
                f"({protocol.owner_ids[0]!r}): reads and audits go through it"
            )

    def on_round_start(self, ctx: RoundContext) -> None:
        from repro.blockchain.transport import PartitionSpec

        if ctx.round_number in self.rounds:
            self.transport.set_partition(
                PartitionSpec(self.partition_name, ((self.victim,),), direction="inbound")
            )
        else:
            self.transport.heal(self.partition_name)

    def on_round_end(self, ctx: RoundContext) -> None:
        if ctx.round_number == max(self.rounds):
            self.transport.heal(self.partition_name)


class LossyGossipScenario(FaultScenario):
    """Every link drops messages with a fixed probability (seeded).

    Gossip retries with exponential backoff, point-to-point redelivery to
    would-be leaders, leader failover, and round re-attempts absorb the loss;
    the run must still converge to one audited chain.  Two runs with the same
    seed are identical down to the delivery report (pinned by tests).
    """

    def __init__(self, drop_probability: float = 0.1, seed: int = 0) -> None:
        from repro.blockchain.transport import FaultPlan

        super().__init__(
            plan=FaultPlan(seed=seed, drop_probability=drop_probability), round_retries=2
        )


class DuplicateStormScenario(FaultScenario):
    """Every link duplicates messages with a fixed probability (seeded).

    Duplicates are the benign fault: mempools deduplicate by tx hash,
    re-probed proposals discard the duplicate verdict, and a duplicate commit
    is acknowledged idempotently — so the chain is byte-identical to a clean
    run's (pinned by tests), with the storm visible only in the delivery
    report's ``duplicated`` counters.
    """

    def __init__(self, duplicate_probability: float = 0.5, seed: int = 0) -> None:
        from repro.blockchain.transport import FaultPlan

        super().__init__(
            plan=FaultPlan(seed=seed, duplicate_probability=duplicate_probability)
        )


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------

class RoundStage:
    """One step of the round pipeline; stages are stateless and reusable."""

    name = "stage"

    def run(self, protocol: "BlockchainFLProtocol", ctx: RoundContext, scenario: Scenario) -> None:
        raise NotImplementedError


class ShardingStage(RoundStage):
    """Derive the round's canonical shard (committee) assignment.

    A no-op under the flat topology (flat rounds keep byte-identical behaviour
    and chains).  Under ``aggregation_topology="sharded"`` the stage splits
    each group into committees of at most ``shard_size`` members — a pure
    function of the round's chain-derived grouping, so every miner and every
    auditor re-derives the same assignment (:mod:`repro.crypto.sharding`) —
    and records it on the context for the masking stage and gossip validation.
    """

    name = "sharding"

    def run(self, protocol, ctx, scenario) -> None:
        if protocol.config.aggregation_topology != "sharded":
            return
        shards = shard_cohort(ctx.groups, protocol.config.shard_size)
        ctx.shards = tuple(tuple(tuple(shard) for shard in group_shards) for group_shards in shards)
        ctx.shard_assignment = shard_membership(shards)
        ctx.metadata["shard_sizes"] = [
            [len(shard) for shard in group_shards] for group_shards in ctx.shards
        ]


class LocalTrainingStage(RoundStage):
    """Every owner trains locally from the current global model."""

    name = "local-training"

    def run(self, protocol, ctx, scenario) -> None:
        for owner_id in ctx.owner_ids:
            participant = protocol.participants[owner_id]
            local = participant.train_local(ctx.global_parameters, ctx.round_number)
            local = scenario.transform_update(ctx, owner_id, local)
            ctx.local_models[owner_id] = local


def validate_submission(ctx: RoundContext, tx: Transaction, model_dimension: int) -> str | None:
    """Gossip-level validation of a submission transaction.

    Mirrors the deterministic checks the training contract would make, so an
    invalid submission is dropped before it can occupy a block slot.  Returns
    a human-readable rejection reason, or None for a valid submission.
    """
    if tx.contract != "fl_training" or tx.method != "submit_masked_update":
        return f"unexpected call {tx.contract}.{tx.method} in the submission stage"
    claimed_group = int(tx.args.get("group_id", -1))
    expected_group = ctx.membership.get(tx.sender)
    if expected_group is None:
        return f"{tx.sender} is not part of the round-{ctx.round_number} cohort"
    if claimed_group != expected_group:
        return (
            f"{tx.sender} claims group {claimed_group} but the round-{ctx.round_number} "
            f"permutation assigns it to group {expected_group}"
        )
    if int(tx.args.get("round_number", -1)) != ctx.round_number:
        return f"{tx.sender} submitted for the wrong round"
    claimed_shard = tx.args.get("shard_id")
    if ctx.shards is not None:
        expected_shard = ctx.shard_assignment[tx.sender][1]
        if claimed_shard is None or int(claimed_shard) != expected_shard:
            return (
                f"{tx.sender} claims shard {claimed_shard} but the round-{ctx.round_number} "
                f"assignment puts it in shard {expected_shard}"
            )
    elif claimed_shard is not None:
        return f"{tx.sender} claims a shard on a flat-topology round"
    payload = np.asarray(tx.args.get("payload"))
    if payload.size != model_dimension:
        return f"payload has dimension {payload.size}, expected {model_dimension}"
    return None


class MaskingSubmissionStage(RoundStage):
    """Owners mask their updates and stage submission transactions.

    The stage builds one submission per owner (letting the scenario tamper
    with or withhold it), validates every transaction at the gossip level,
    and then waits — up to ``ctx.max_wait_ticks`` simulated ticks — for
    withheld submissions to arrive.  Nothing reaches the mempool here; the
    BlockProposal stage flushes the completed set in canonical order.
    """

    name = "masking-submission"

    def run(self, protocol, ctx, scenario) -> None:
        # Snapshot the off-chain nonce counters: a timed-out round gossips
        # nothing, so the counters must rewind with it or the protocol object
        # would be permanently ahead of its own chain.
        nonce_snapshot = dict(protocol._nonces)
        for owner_id in ctx.owner_ids:
            participant = protocol.participants[owner_id]
            group_id = ctx.membership[owner_id]
            nonce = protocol._next_nonce(owner_id)
            shard: list[str] | None = None
            shard_id: int | None = None
            if ctx.shards is not None:
                shard_id = ctx.shard_assignment[owner_id][1]
                shard = list(ctx.shards[group_id][shard_id])
            honest = participant.masked_update_transaction(
                ctx.local_models[owner_id],
                ctx.round_number,
                group=list(ctx.groups[group_id]),
                group_id=group_id,
                nonce=nonce,
                shard=shard,
                shard_id=shard_id,
            )
            tampered_args = scenario.tamper_submission(ctx, owner_id, dict(honest.args))
            # Rebuilding from the (possibly tampered) args is exact: identical
            # args reproduce the honest transaction bit for bit, signature
            # included, so no array-valued dict comparison is needed.
            tx = Transaction(
                sender=owner_id,
                contract=honest.contract,
                method=honest.method,
                args=tampered_args,
                nonce=nonce,
            )
            reason = validate_submission(ctx, tx, protocol.model_dimension)
            if reason is not None:
                rejection = SubmissionRejection(owner_id, ctx.round_number, reason)
                ctx.rejections.append(rejection)
                scenario.on_rejection(ctx, rejection)
                # The rejected transaction never consumed its nonce on chain,
                # so the honest fallback slots in exactly where it would have.
                tx = honest
            ctx.submissions[owner_id] = tx
            reason = scenario.withhold_submission(ctx, owner_id)
            if reason is not None:
                ctx.withheld[owner_id] = reason

        while ctx.missing_owners() and ctx.ticks_waited < ctx.max_wait_ticks:
            ctx.ticks_waited += 1
            scenario.on_tick(ctx)
        missing = ctx.missing_owners()
        if missing:
            protocol._nonces = nonce_snapshot
            raise RoundError(
                f"round {ctx.round_number}: no submission from {missing} after "
                f"{ctx.ticks_waited} ticks (straggler timeout); nothing was committed"
            )


class SecureAggregationStage(RoundStage):
    """Stage the ``finalize_round`` call that aggregates the masked updates.

    The aggregation itself (mask cancellation, fixed-point decoding, group and
    global model publication) is a deterministic contract execution; staging
    it here keeps the call inside the round's single block.
    """

    name = "secure-aggregation"

    def run(self, protocol, ctx, scenario) -> None:
        closer = ctx.owner_ids[ctx.round_number % len(ctx.owner_ids)]
        ctx.closing_transactions.append(
            Transaction(
                sender=closer,
                contract="fl_training",
                method="finalize_round",
                args={"round_number": ctx.round_number},
                nonce=protocol._next_nonce(closer),
            )
        )


class EvaluationStage(RoundStage):
    """Stage the ``evaluate_round`` call (Algorithm 1 on chain)."""

    name = "evaluation"

    def run(self, protocol, ctx, scenario) -> None:
        closer = ctx.owner_ids[ctx.round_number % len(ctx.owner_ids)]
        ctx.closing_transactions.append(
            Transaction(
                sender=closer,
                contract="contribution",
                method="evaluate_round",
                args={"round_number": ctx.round_number},
                nonce=protocol._next_nonce(closer),
            )
        )


class MembershipStage(RoundStage):
    """Stage the round's cohort-membership transactions (join/leave requests).

    Membership requests ride in the round's block *after* the closing calls:
    by the time a ``request_join`` / ``request_leave`` executes, the round is
    finalized on chain, so the registry can enforce that the change targets a
    strictly future round boundary.  Runs without membership scenarios stage
    nothing and commit byte-identical blocks to the fixed-cohort protocol.
    """

    name = "membership"

    def run(self, protocol, ctx, scenario) -> None:
        for tx in scenario.membership_transactions(protocol, ctx):
            ctx.closing_transactions.append(tx)


class BlockProposalStage(RoundStage):
    """Flush the staged transactions, run consensus, and read the round back.

    Submissions are gossiped in canonical sorted-owner order followed by the
    closing calls, so the proposed block's transaction list — and therefore
    its Merkle root and hash — does not depend on scenario timing.

    On authority-rotation chains the proposer is not the static round-robin:
    the stage derives the round's scheduled proposers from chain state, asks
    the scenario which of them are silent, and drives the consensus view-change
    loop — the winning view lands in the block header (and in
    ``ctx.metadata["view"]`` / ``ctx.metadata["view_changes"]`` for
    reporting).  Every committed round additionally records its header
    coordinates (``ctx.metadata["block_height"]`` / ``["state_root"]``) — the
    commitment a participant checks its round entries' inclusion proofs
    against on ``state_root_version=2`` chains, and the height to pass to
    ``Blockchain.state_at``.  If *every* scheduled proposer is silent the round aborts
    before anything reaches the mempool, preserving the pipeline's
    "an aborted round touched nothing" contract.
    """

    name = "block-proposal"

    def run(self, protocol, ctx, scenario) -> None:
        rotation = protocol.config.authority_rotation
        silent: set[str] = set()
        if rotation:
            proposers = protocol.round_proposers(ctx.round_number)
            silent = {p for p in proposers if scenario.leader_offline(ctx, p)}
            if len(silent) == len(proposers):
                raise RoundError(
                    f"round {ctx.round_number}: every scheduled proposer "
                    f"({', '.join(proposers)}) is offline; nothing was committed"
                )
        staged = [ctx.submissions[owner_id] for owner_id in sorted(ctx.submissions)]
        staged.extend(ctx.closing_transactions)
        for tx in staged:
            protocol._submit(tx)

        def withdraw_staged() -> None:
            # Every available proposer's block was rejected post-gossip:
            # withdraw the round's transactions from all mempools so the
            # abort still leaves nothing behind.
            hashes = [tx.tx_hash for tx in staged]
            for participant in protocol.participants.values():
                participant.node.mempool.remove(hashes)

        if rotation:
            try:
                ctx.consensus, view, view_changes = protocol._commit_round_block(
                    ctx.round_number, silent, required=staged
                )
            except ConsensusError as exc:
                withdraw_staged()
                raise RoundError(str(exc)) from exc
            ctx.metadata["view"] = view
            ctx.metadata["view_changes"] = view_changes
        elif protocol.network.faulty:
            # Under delivery faults the static-leader commit fails over across
            # the round-robin; if no leader can assemble and commit the round's
            # block, abort the round without leaving staged txs behind.
            try:
                ctx.consensus = protocol._commit_block(required=staged)
            except ConsensusError as exc:
                withdraw_staged()
                raise RoundError(str(exc)) from exc
        else:
            ctx.consensus = protocol._commit_block()

        chain = protocol._reference_chain()
        # The round's committed header coordinates: this is the block whose
        # state_root commits the round's evaluation/settlement entries, i.e.
        # the header a participant verifies an inclusion proof against
        # (chain.state_at(height) reads the state exactly as of this block).
        ctx.metadata["block_height"] = chain.height
        ctx.metadata["state_root"] = chain.head.header.state_root
        # A rejected membership request commits as a *failed receipt* — the
        # round itself is fine (and its block stays on chain), but the
        # scenario the caller asked for did not happen; surface it as a
        # run-level ProtocolError rather than a RoundError, whose contract is
        # "the aborted round touched nothing".
        for tx, receipt in zip(chain.head.transactions, chain.head.receipts):
            if (
                tx.contract == "registry"
                and tx.method in ("request_join", "request_leave")
                and not receipt.success
            ):
                raise ProtocolError(
                    f"round {ctx.round_number} committed, but its membership request "
                    f"{tx.method} from {tx.sender} failed on chain: {receipt.error}"
                )
        round_record = chain.state.get("fl_training", f"round/{ctx.round_number}")
        evaluation = chain.state.get("contribution", f"evaluation/{ctx.round_number}")
        if round_record is None or evaluation is None:
            raise RoundError(f"round {ctx.round_number} did not finalize or evaluate on chain")
        global_vector = np.asarray(round_record["global_model"], dtype=np.float64)
        new_global = protocol._template_parameters.from_vector(global_vector)
        ctx.result = RoundResult(
            round_number=ctx.round_number,
            groups=tuple(tuple(group) for group in round_record["groups"]),
            user_values=dict(evaluation["user_values"]),
            group_values=tuple(evaluation["group_values"]),
            global_utility=float(evaluation["global_utility"]),
            global_parameters=new_global,
            consensus=ctx.consensus,
            user_half_widths=dict(evaluation.get("user_half_widths", {})),
            estimator=evaluation.get("estimator"),
        )
        scenario.on_round_end(ctx)


DEFAULT_ROUND_STAGES: tuple[RoundStage, ...] = (
    ShardingStage(),
    LocalTrainingStage(),
    MaskingSubmissionStage(),
    SecureAggregationStage(),
    EvaluationStage(),
    MembershipStage(),
    BlockProposalStage(),
)


class SetupStage:
    """Pin protocol parameters and register every participant on chain."""

    name = "setup"

    def run(self, protocol: "BlockchainFLProtocol", scenario: Scenario) -> VerificationResult | None:
        if protocol._setup_done:
            return None
        result = protocol.setup()
        scenario.on_setup(protocol)
        return result


class SettlementStage:
    """Distribute the reward pool and collect the run's final statistics.

    Fixed-cohort runs settle through the classic ``distribute`` call (their
    final block is byte-identical to the pre-epoch protocol).  Runs whose
    chain records membership events settle through ``distribute_by_epoch``:
    the pool splits across cohort epochs by SV mass, so owners absent from an
    epoch's rounds earn nothing for them.
    """

    name = "settlement"

    def run(
        self, protocol: "BlockchainFLProtocol", result: ProtocolResult, scenario: Scenario
    ) -> ProtocolResult:
        chain = protocol._reference_chain()
        has_membership = has_membership_events(chain.state)
        closer = protocol.owner_ids[0]
        reward_tx = Transaction(
            sender=closer,
            contract="reward",
            method="distribute_by_epoch" if has_membership else "distribute",
            args={"reward_pool": protocol.config.reward_pool, "label": "final"},
            nonce=protocol._next_nonce(closer),
        )
        protocol._submit(reward_tx)
        protocol._commit_block(required=[reward_tx])

        chain = protocol._reference_chain()
        if chain.state.get("reward", "distribution/final") is None:
            # A failed settlement produces a failed receipt, not an exception —
            # surface it instead of reporting empty balances as a clean run.
            # The settlement block is already committed, so this is a run-level
            # ProtocolError, not a RoundError ("the aborted round touched
            # nothing").
            receipt = chain.find_receipt(reward_tx.tx_hash)
            error = receipt.error if receipt is not None else "transaction not found"
            raise ProtocolError(f"final reward settlement failed on chain: {error}")
        result.total_contributions = dict(chain.state.get("contribution", "totals", {}))
        result.reward_balances = dict(chain.state.get("reward", "balances", {}))
        result.chain_height = chain.height
        result.total_transactions = chain.total_transactions()
        result.total_gas = chain.total_gas()
        result.network_stats = protocol.network.stats.as_dict()
        result.delivery_report = protocol.network.stats.delivery_report()
        if has_membership:
            result.epoch_settlements = self._epoch_summaries(protocol, chain)
        scenario.on_settlement(result)
        return result

    @staticmethod
    def _epoch_summaries(protocol: "BlockchainFLProtocol", chain) -> list[dict]:
        """Per-epoch report: round range, cohort, SV mass, and settled pool."""
        distribution = chain.state.get("reward", "distribution/final", {}) or {}
        breakdown = distribution.get("epochs", {})
        summaries = []
        for epoch in epochs_from_state(chain.state, protocol.config.n_rounds):
            settled = breakdown.get(str(epoch["epoch"]), {})
            summaries.append(
                {
                    "epoch": epoch["epoch"],
                    "start": epoch["start"],
                    "end": epoch["end"],
                    "cohort": list(epoch["cohort"]),
                    "sv_mass": float(settled.get("sv_mass", 0.0)),
                    "reward_pool": float(settled.get("reward_pool", 0.0)),
                    "payouts": dict(settled.get("payouts", {})),
                }
            )
        return summaries


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------

class RoundScheduler:
    """Drives the stage pipeline over all configured rounds.

    The scheduler owns the stage list (swap stages to customize the runtime),
    the scenario, and the per-round contexts it produced — the contexts stay
    available on :attr:`contexts` for reporting and tests.
    """

    def __init__(
        self,
        protocol: "BlockchainFLProtocol",
        scenario: Scenario | None = None,
        round_stages: Sequence[RoundStage] | None = None,
        max_wait_ticks: int = 8,
        round_retries: int | None = None,
    ) -> None:
        self.protocol = protocol
        self.scenario = scenario or Scenario()
        if self.scenario.requires_authority_rotation and not protocol.config.authority_rotation:
            raise ProtocolError(
                f"{type(self.scenario).__name__} requires authority rotation: enable "
                "ProtocolConfig.authority_rotation or the scenario would silently "
                "degenerate to a plain run"
            )
        self.round_stages = tuple(round_stages) if round_stages is not None else DEFAULT_ROUND_STAGES
        self.max_wait_ticks = int(max_wait_ticks)
        if round_retries is None:
            round_retries = max(
                getattr(self.scenario, "round_retries", 0),
                getattr(protocol.config, "round_retries", 0),
            )
        self.round_retries = int(round_retries)
        self.contexts: list[RoundContext] = []

    def build_context(self, round_number: int, global_parameters: ModelParameters) -> RoundContext:
        """Create the context for a round: cohort and grouping resolved, nothing trained.

        The round's owner cohort is re-derived from chain state (the
        registry's epoch view), so a join or leave committed in an earlier
        block takes effect here — and any miner replaying the chain derives
        the same cohort.  On dynamic-membership chains the peer DH keys are
        refreshed first so masks can be built against owners whose keys were
        registered after setup; fixed-cohort runs skip the refresh (their key
        table cannot change after setup).
        """
        protocol = self.protocol
        if has_membership_events(protocol._reference_chain().state):
            protocol.sync_peer_keys()
        cohort = protocol.active_cohort(round_number)
        groups = make_groups(
            cohort,
            protocol.config.n_groups,
            protocol.config.permutation_seed,
            round_number,
        )
        return RoundContext(
            round_number=round_number,
            global_parameters=global_parameters,
            owner_ids=list(cohort),
            groups=tuple(tuple(group) for group in groups),
            membership=group_members(groups),
            max_wait_ticks=self.max_wait_ticks,
        )

    def run_round(self, round_number: int, global_parameters: ModelParameters) -> RoundResult:
        """Execute one full on-chain round through the stage pipeline.

        A :class:`~repro.exceptions.RoundError` means an attempt aborted with
        nothing committed; since an aborted attempt touches nothing, the
        scheduler may simply re-attempt the round (:attr:`round_retries`
        extra times — the recovery path for rounds lost to delivery faults,
        e.g. while a partition is still open).  Each attempt advances the
        transport's simulated clock by one tick.  The last attempt's
        :class:`~repro.exceptions.RoundError` propagates unchanged.
        """
        if not self.protocol._setup_done:
            raise ProtocolError("setup() must run before training rounds")
        last_error: RoundError | None = None
        for attempt in range(self.round_retries + 1):
            self.protocol.network.begin_round(round_number)
            try:
                return self._attempt_round(round_number, global_parameters, attempt)
            except RoundError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def _attempt_round(
        self, round_number: int, global_parameters: ModelParameters, attempt: int = 0
    ) -> RoundResult:
        """One attempt of a round; aborts rewind the off-chain nonce counters.

        Every attempt appends its own :class:`RoundContext` to
        :attr:`contexts` (an aborted attempt's ``result`` stays ``None``) and
        records the attempt number and the delivery activity it caused in
        ``ctx.metadata["attempt"]`` / ``["delivery"]``.
        """
        from repro.blockchain.network import delivery_report_delta

        ctx = self.build_context(round_number, global_parameters)
        ctx.metadata["attempt"] = attempt
        self.contexts.append(ctx)
        self.scenario.on_round_start(ctx)
        nonce_snapshot = dict(self.protocol._nonces)
        report_before = self.protocol.network.stats.delivery_report()
        try:
            for stage in self.round_stages:
                stage.run(self.protocol, ctx, self.scenario)
        except RoundError:
            # RoundError's contract is "the aborted round touched nothing":
            # nothing was committed, so the nonces staged by earlier stages
            # (submission building, closing calls) must rewind with it.
            self.protocol._nonces = nonce_snapshot
            ctx.metadata["delivery"] = delivery_report_delta(
                report_before, self.protocol.network.stats.delivery_report()
            )
            raise
        ctx.metadata["delivery"] = delivery_report_delta(
            report_before, self.protocol.network.stats.delivery_report()
        )
        if ctx.result is None:
            raise RoundError(f"round {round_number}: pipeline finished without a result")
        return ctx.result

    def run(self) -> ProtocolResult:
        """Run setup, every training round, and the final settlement."""
        SetupStage().run(self.protocol, self.scenario)
        result = ProtocolResult()
        global_parameters = self.protocol._template_parameters
        for round_number in range(self.protocol.config.n_rounds):
            round_result = self.run_round(round_number, global_parameters)
            global_parameters = round_result.global_parameters
            result.rounds.append(round_result)
        result.final_parameters = global_parameters
        return SettlementStage().run(self.protocol, result, self.scenario)
