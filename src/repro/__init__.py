"""repro — Transparent Contribution Evaluation for Secure Federated Learning on Blockchain.

A from-scratch reproduction of Ma, Cao & Xiong (ICDE 2021): a blockchain-based
cross-silo federated-learning framework in which model updates are protected by
secure aggregation and each owner's contribution is evaluated transparently on
chain with the Group Shapley Value (GroupSV) protocol.

Public API highlights
---------------------

Data and FL substrate::

    from repro.datasets import make_owner_datasets
    from repro.fl import DataOwner, FederatedTrainer, LogisticRegressionModel

Shapley valuation::

    from repro.shapley import native_shapley, group_shapley_round, cosine_similarity

The full on-chain protocol (staged round pipeline + scenario hooks)::

    from repro.core import BlockchainFLProtocol, ProtocolConfig, audit_chain
    from repro.core import RoundScheduler, Scenario, DropoutScenario

See ``examples/quickstart.py`` for an end-to-end walk-through,
``docs/architecture.md`` for the pipeline/backend design, and DESIGN.md for
the module inventory and the experiment index.
"""

from repro.core.config import ProtocolConfig
from repro.core.pipeline import RoundContext, RoundScheduler, Scenario
from repro.core.protocol import BlockchainFLProtocol, ProtocolResult
from repro.datasets.loader import Dataset, OwnerDataset, make_owner_datasets
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.model import ModelParameters
from repro.shapley.group import GroupShapleyResult, compute_group_shapley, group_shapley_round
from repro.shapley.metrics import cosine_similarity
from repro.shapley.native import native_shapley
from repro.shapley.utility import AccuracyUtility, CoalitionModelUtility, RetrainUtility

__version__ = "1.0.0"

__all__ = [
    "ProtocolConfig",
    "BlockchainFLProtocol",
    "ProtocolResult",
    "RoundContext",
    "RoundScheduler",
    "Scenario",
    "Dataset",
    "OwnerDataset",
    "make_owner_datasets",
    "LogisticRegressionModel",
    "ModelParameters",
    "GroupShapleyResult",
    "compute_group_shapley",
    "group_shapley_round",
    "cosine_similarity",
    "native_shapley",
    "AccuracyUtility",
    "CoalitionModelUtility",
    "RetrainUtility",
    "__version__",
]
