"""Analysis tools for the paper's discussion points and future-work items.

* :mod:`repro.analysis.privacy` — the (n/m)-anonymity style privacy/resolution
  trade-off discussed at the end of Section IV.B.
* :mod:`repro.analysis.throughput` — blockchain overhead and bottleneck
  modelling (future work §VI item 1).
* :mod:`repro.analysis.tradeoff` — joint privacy / accuracy / runtime sweeps
  over the group count m (future work §VI item 3).
"""

from repro.analysis.privacy import PrivacyAssessment, anonymity_set_sizes, assess_privacy, sv_resolution
from repro.analysis.reporting import render_bar_chart, render_series, render_table
from repro.analysis.throughput import ThroughputModel, ThroughputReport, measure_chain_overhead
from repro.analysis.tradeoff import TradeoffPoint, sweep_group_counts

__all__ = [
    "PrivacyAssessment",
    "anonymity_set_sizes",
    "assess_privacy",
    "sv_resolution",
    "render_bar_chart",
    "render_series",
    "render_table",
    "ThroughputModel",
    "ThroughputReport",
    "measure_chain_overhead",
    "TradeoffPoint",
    "sweep_group_counts",
]
