"""Joint privacy / approximation-accuracy / runtime sweeps over the group count m.

Future work §VI item 3 asks for a thorough examination of "the trade-offs
between privacy, transparency, and security".  :func:`sweep_group_counts`
produces the quantitative slice of that study our substrates can measure: for
every m it reports the privacy position (anonymity set size), the GroupSV
approximation quality against ground truth (cosine similarity), and the number
of coalition evaluations (the on-chain cost driver).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.privacy import assess_privacy
from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters
from repro.shapley.group import group_shapley_round
from repro.shapley.metrics import cosine_similarity, spearman_correlation
from repro.shapley.utility import AccuracyUtility


@dataclass(frozen=True)
class TradeoffPoint:
    """One (n, m) operating point of the privacy/accuracy/cost trade-off."""

    n_owners: int
    n_groups: int
    min_anonymity: int
    resolution: float
    cosine_to_ground_truth: float
    rank_correlation: float
    coalition_evaluations: int
    runtime_seconds: float


def sweep_group_counts(
    local_models: Mapping[str, ModelParameters],
    ground_truth: Mapping[str, float],
    scorer: AccuracyUtility,
    group_counts: list[int] | None = None,
    permutation_seed: int = 13,
    round_number: int = 0,
) -> list[TradeoffPoint]:
    """Evaluate the trade-off at every requested group count.

    Args:
        local_models: each owner's local model for the round being analysed.
        ground_truth: reference per-owner Shapley values (e.g. native SV).
        scorer: the shared utility scorer.
        group_counts: the m values to sweep (default 2..n).
        permutation_seed / round_number: grouping inputs, as in Algorithm 1.
    """
    owners = sorted(local_models)
    n_owners = len(owners)
    if set(ground_truth) != set(owners):
        raise ValidationError("ground truth must cover exactly the owners with local models")
    if group_counts is None:
        group_counts = list(range(2, n_owners + 1))
    points = []
    for m in group_counts:
        start = time.perf_counter()
        result = group_shapley_round(local_models, m, permutation_seed, round_number, scorer)
        elapsed = time.perf_counter() - start
        privacy = assess_privacy(n_owners, m, permutation_seed, round_number)
        points.append(
            TradeoffPoint(
                n_owners=n_owners,
                n_groups=m,
                min_anonymity=privacy.min_anonymity,
                resolution=privacy.resolution,
                cosine_to_ground_truth=cosine_similarity(result.user_values, dict(ground_truth)),
                rank_correlation=spearman_correlation(result.user_values, dict(ground_truth)),
                coalition_evaluations=len(result.coalition_utilities),
                runtime_seconds=elapsed,
            )
        )
    return points
