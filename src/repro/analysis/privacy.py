"""Privacy/resolution analysis of the group count m (Section IV.B discussion).

The paper observes: "given the number of groups m, the average model parameters
for each group of size n/m is revealed, in some sense similar to
(n/m)-anonymity.  Hence, the larger the m, the less private.  When m decreases
... the resolution decreases."

This module quantifies both sides of that trade-off:

* the *anonymity set size* of every owner (its group size): larger is more
  private because the revealed group-average model blends more owners;
* the *SV resolution*: how finely the group-based SV can distinguish owners
  (the number of distinct contribution levels it can assign).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.shapley.group import make_groups


def anonymity_set_sizes(groups: Sequence[Sequence[str]]) -> dict[str, int]:
    """Each owner's anonymity set size = the size of the group it was averaged into."""
    sizes: dict[str, int] = {}
    for group in groups:
        for owner in group:
            sizes[owner] = len(group)
    return sizes


def sv_resolution(n_owners: int, n_groups: int) -> float:
    """Fraction of owners the group-based SV can distinguish (m / n).

    ``m = n`` gives per-owner resolution 1.0 (every owner scored individually);
    ``m = 1`` gives resolution 1/n (all owners share one score).
    """
    if n_owners < 1 or not 1 <= n_groups <= n_owners:
        raise ValidationError("need 1 <= n_groups <= n_owners")
    return n_groups / n_owners


@dataclass(frozen=True)
class PrivacyAssessment:
    """Summary of the privacy/resolution position of a (n, m) configuration.

    Attributes:
        n_owners / n_groups: the configuration assessed.
        min_anonymity: smallest group size (worst-case privacy).
        mean_anonymity: average group size.
        resolution: m / n, the contribution-resolution proxy.
        revealed_fraction: 1 / min_anonymity — how much of a single owner's
            model is exposed in the worst case (1.0 when a group has size 1,
            i.e. that owner's exact model is published).
    """

    n_owners: int
    n_groups: int
    min_anonymity: int
    mean_anonymity: float
    resolution: float
    revealed_fraction: float


def assess_privacy(
    n_owners: int,
    n_groups: int,
    permutation_seed: int = 13,
    round_number: int = 0,
) -> PrivacyAssessment:
    """Assess the privacy/resolution trade-off of a configuration.

    Uses the actual grouping the protocol would produce for the given seed and
    round, so uneven group sizes (when m does not divide n) are reflected.
    """
    owner_ids = [f"owner-{i}" for i in range(n_owners)]
    groups = make_groups(owner_ids, n_groups, permutation_seed, round_number)
    sizes = list(anonymity_set_sizes(groups).values())
    min_anonymity = int(min(sizes))
    return PrivacyAssessment(
        n_owners=n_owners,
        n_groups=n_groups,
        min_anonymity=min_anonymity,
        mean_anonymity=float(np.mean(sizes)),
        resolution=sv_resolution(n_owners, n_groups),
        revealed_fraction=1.0 / min_anonymity,
    )
