"""Blockchain overhead and throughput modelling (future work §VI item 1).

Two complementary views:

* :func:`measure_chain_overhead` measures an *actual* protocol run: bytes and
  messages on the simulated network, transactions and gas on the chain, and the
  per-round cost breakdown.
* :class:`ThroughputModel` is an analytic model: given a target chain's
  transaction throughput and payload limits (e.g. Ethereum-like or
  Hyperledger-like presets), it estimates rounds-per-hour and flags the binding
  bottleneck — the question the paper's future work poses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockchain.chain import Blockchain
from repro.blockchain.network import NetworkStats
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class ThroughputReport:
    """Measured on-chain/on-network cost of a protocol run."""

    n_blocks: int
    n_transactions: int
    total_gas: int
    network_messages: int
    network_bytes: int
    transactions_per_round: float
    bytes_per_round: float
    gas_per_round: float


def measure_chain_overhead(chain: Blockchain, network_stats: NetworkStats | dict, n_rounds: int) -> ThroughputReport:
    """Summarize the overhead of a finished protocol run."""
    if n_rounds < 1:
        raise ValidationError("n_rounds must be positive")
    stats = network_stats.as_dict() if isinstance(network_stats, NetworkStats) else dict(network_stats)
    n_transactions = chain.total_transactions()
    total_gas = chain.total_gas()
    return ThroughputReport(
        n_blocks=chain.height,
        n_transactions=n_transactions,
        total_gas=total_gas,
        network_messages=int(stats.get("messages_sent", 0)),
        network_bytes=int(stats.get("bytes_sent", 0)),
        transactions_per_round=n_transactions / n_rounds,
        bytes_per_round=float(stats.get("bytes_sent", 0)) / n_rounds,
        gas_per_round=total_gas / n_rounds,
    )


@dataclass(frozen=True)
class ThroughputModel:
    """Analytic throughput model for deploying the protocol on a real chain.

    Attributes:
        transactions_per_second: the chain's sustained transaction throughput.
        max_tx_payload_bytes: the largest payload a single transaction may carry.
        block_interval_seconds: average block time.
    """

    transactions_per_second: float
    max_tx_payload_bytes: int
    block_interval_seconds: float
    name: str = "custom"

    @classmethod
    def ethereum_like(cls) -> "ThroughputModel":
        """Public-chain preset: ~15 tx/s, ~128 KiB practical payload, 13 s blocks."""
        return cls(15.0, 128 * 1024, 13.0, name="ethereum-like")

    @classmethod
    def hyperledger_like(cls) -> "ThroughputModel":
        """Permissioned-chain preset: ~1000 tx/s, ~1 MiB payload, 1 s blocks."""
        return cls(1000.0, 1024 * 1024, 1.0, name="hyperledger-like")

    def transactions_per_update(self, update_bytes: int) -> int:
        """How many transactions one masked update must be split into."""
        if update_bytes <= 0:
            raise ValidationError("update_bytes must be positive")
        return -(-update_bytes // self.max_tx_payload_bytes)  # ceiling division

    def round_latency_seconds(self, n_owners: int, update_bytes: int, evaluation_transactions: int = 2) -> float:
        """Estimated wall-clock seconds to commit one full round on this chain.

        A round needs one (possibly chunked) update transaction per owner plus
        the finalize/evaluate calls; latency is bounded below by both the
        throughput limit and one block interval.
        """
        if n_owners < 1:
            raise ValidationError("n_owners must be positive")
        tx_count = n_owners * self.transactions_per_update(update_bytes) + evaluation_transactions
        throughput_bound = tx_count / self.transactions_per_second
        return max(throughput_bound, self.block_interval_seconds)

    def rounds_per_hour(self, n_owners: int, update_bytes: int) -> float:
        """Estimated number of protocol rounds this chain can sustain per hour."""
        return 3600.0 / self.round_latency_seconds(n_owners, update_bytes)

    def bottleneck(self, n_owners: int, update_bytes: int) -> str:
        """Which constraint binds: ``"throughput"`` or ``"block-interval"``."""
        tx_count = n_owners * self.transactions_per_update(update_bytes) + 2
        throughput_bound = tx_count / self.transactions_per_second
        return "throughput" if throughput_bound > self.block_interval_seconds else "block-interval"
