"""Plain-text reporting helpers: tables and horizontal bar charts.

The benchmarks and examples print their figures/tables as text so the
reproduction has no plotting dependency; these helpers keep that output
consistent and readable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ValidationError


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a right-aligned plain-text table."""
    if not headers:
        raise ValidationError("a table needs at least one column")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError("every row must have one cell per header")
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [" | ".join(str(headers[i]).rjust(widths[i]) for i in range(len(headers)))]
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(" | ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    fill: str = "█",
    show_values: bool = True,
) -> str:
    """Render a horizontal bar chart of labelled values.

    Negative values are drawn with ``▒`` so contribution charts can show both
    positive and negative Shapley values on one scale.
    """
    if not values:
        raise ValidationError("a bar chart needs at least one value")
    if width < 1:
        raise ValidationError("width must be positive")
    label_width = max(len(str(label)) for label in values)
    magnitude = max(abs(float(v)) for v in values.values())
    lines = []
    for label, value in values.items():
        value = float(value)
        bar_length = 0 if magnitude == 0 else int(round(abs(value) / magnitude * width))
        bar = (fill if value >= 0 else "▒") * bar_length
        suffix = f" {value:+.4f}" if show_values else ""
        lines.append(f"{str(label).ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def render_series(series: Mapping[str, Sequence[float]], precision: int = 4) -> str:
    """Render named numeric series (e.g. per-round contributions) line by line."""
    if not series:
        raise ValidationError("need at least one series")
    label_width = max(len(str(label)) for label in series)
    lines = []
    for label, values in series.items():
        formatted = ", ".join(f"{float(v):+.{precision}f}" for v in values)
        lines.append(f"{str(label).ljust(label_width)}: [{formatted}]")
    return "\n".join(lines)
