"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from :class:`ReproError`
so callers can catch library failures distinctly from programming errors.
The hierarchy mirrors the package layout: one branch per subsystem
(cryptography, blockchain, federated learning, Shapley valuation, protocol).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value or an inconsistent combination of values."""


class ValidationError(ReproError):
    """A value failed structural validation (shape, range, type)."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyExchangeError(CryptoError):
    """A Diffie-Hellman key agreement step failed or used mismatched parameters."""


class MaskingError(CryptoError):
    """Pairwise-mask construction or cancellation failed."""


class EncodingRangeError(CryptoError):
    """A float value cannot be represented in the configured fixed-point range."""


class SecretSharingError(CryptoError):
    """Shamir share generation or reconstruction failed."""


# ---------------------------------------------------------------------------
# Blockchain
# ---------------------------------------------------------------------------


class BlockchainError(ReproError):
    """Base class for blockchain failures."""


class InvalidTransactionError(BlockchainError):
    """A transaction is malformed or fails signature/nonce checks."""


class InvalidBlockError(BlockchainError):
    """A block fails structural or consensus validation."""


class ChainValidationError(BlockchainError):
    """The chain as a whole is inconsistent (broken links, bad state roots)."""


class ConsensusError(BlockchainError):
    """Leader selection or block verification could not reach agreement."""


class ContractError(BlockchainError):
    """A smart-contract call failed; the enclosing transaction is rejected."""


class ContractNotFoundError(ContractError):
    """No contract is registered under the requested name or address."""


class ContractStateError(ContractError):
    """A contract call is not valid in the contract's current state."""


class StorageError(BlockchainError):
    """A persistence backend failed to commit, reopen, or restore chain data."""


# ---------------------------------------------------------------------------
# Federated learning
# ---------------------------------------------------------------------------


class FLError(ReproError):
    """Base class for federated-learning failures."""


class ModelShapeError(FLError):
    """Model parameter arrays have incompatible shapes."""


class PartitionError(FLError):
    """Dataset partitioning parameters are invalid for the given dataset."""


class TrainingError(FLError):
    """A local or federated training loop failed (e.g. non-finite loss)."""


# ---------------------------------------------------------------------------
# Shapley valuation
# ---------------------------------------------------------------------------


class ShapleyError(ReproError):
    """Base class for contribution-evaluation failures."""


class UtilityError(ShapleyError):
    """A utility function could not be evaluated on a coalition."""


class GroupingError(ShapleyError):
    """Participants could not be assigned to groups (bad m, empty groups)."""


# ---------------------------------------------------------------------------
# Protocol orchestration
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for end-to-end protocol failures."""


class SetupError(ProtocolError):
    """The off-chain setup stage could not reach a consistent configuration."""


class RoundError(ProtocolError):
    """A federated round failed (missing updates, aggregation mismatch)."""


class AuditError(ProtocolError):
    """A transparency audit found chain data inconsistent with reported results."""
