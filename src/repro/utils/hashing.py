"""Hashing helpers shared by the blockchain and crypto layers."""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from repro.utils.serialization import canonical_dumps


def sha256_hex(data: bytes | str) -> str:
    """Return the hex-encoded SHA-256 digest of ``data``."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def sha256_bytes(data: bytes | str) -> bytes:
    """Return the raw SHA-256 digest of ``data``."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).digest()


def hash_payload(payload: Any) -> str:
    """Hash an arbitrary payload via its canonical serialization.

    This is the single hashing entry point for transactions, contract state,
    and model commitments, so equal payloads hash equally on every node.
    """
    return sha256_hex(canonical_dumps(payload))


def hash_concat(parts: Iterable[str]) -> str:
    """Hash the concatenation of already-hex hashes (used by Merkle trees)."""
    joined = "".join(parts)
    return sha256_hex(joined)
