"""Shared utilities: canonical serialization, hashing, RNG management, validation."""

from repro.utils.hashing import sha256_hex, hash_payload, hash_concat
from repro.utils.rng import RngRegistry, derive_seed, spawn_rng
from repro.utils.serialization import canonical_dumps, canonical_loads, encode_array, decode_array
from repro.utils.validation import (
    ensure_finite,
    ensure_in_range,
    ensure_positive_int,
    ensure_probability,
    ensure_same_shape,
)

__all__ = [
    "sha256_hex",
    "hash_payload",
    "hash_concat",
    "RngRegistry",
    "derive_seed",
    "spawn_rng",
    "canonical_dumps",
    "canonical_loads",
    "encode_array",
    "decode_array",
    "ensure_finite",
    "ensure_in_range",
    "ensure_positive_int",
    "ensure_probability",
    "ensure_same_shape",
]
