"""Canonical, deterministic serialization used throughout the blockchain layer.

Transactions, blocks, and contract state must hash identically on every miner,
so all on-chain payloads are serialized with a *canonical* JSON encoding:
sorted keys, no insignificant whitespace, and explicit encodings for the few
non-JSON types we need (bytes and NumPy arrays).

NumPy arrays are encoded as a dict with a sentinel key ``__ndarray__`` holding
the flattened values as a list, plus dtype and shape, so that decoding restores
an identical array. Floats are serialized via ``repr`` -level precision which
round-trips exactly for float64.
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.exceptions import ValidationError

_NDARRAY_KEY = "__ndarray__"
_BYTES_KEY = "__bytes__"
_INT_KEY = "__bigint__"

# JSON numbers lose precision beyond 2**53; integers larger than this (e.g. DH
# public keys) are encoded as decimal strings under a sentinel key.
_MAX_SAFE_INT = 2**53 - 1


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """Encode a NumPy array into a JSON-compatible dict.

    The raw little-endian bytes are base64 encoded, which round-trips bit-exactly
    (important for hashing model updates).
    """
    arr = np.ascontiguousarray(array)
    return {
        _NDARRAY_KEY: base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
    }


def decode_array(payload: dict[str, Any]) -> np.ndarray:
    """Decode an array previously encoded with :func:`encode_array`."""
    if _NDARRAY_KEY not in payload:
        raise ValidationError("payload is not an encoded ndarray")
    raw = base64.b64decode(payload[_NDARRAY_KEY])
    arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return arr.reshape(payload["shape"]).copy()


def _encode_value(value: Any) -> Any:
    """Recursively convert a Python object tree into JSON-encodable form."""
    if isinstance(value, np.ndarray):
        return _encode_value(encode_array(value))
    if isinstance(value, np.generic):
        return _encode_value(value.item())
    if isinstance(value, bytes):
        return {_BYTES_KEY: base64.b64encode(value).decode("ascii")}
    if isinstance(value, bool) or value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int):
        if abs(value) > _MAX_SAFE_INT:
            return {_INT_KEY: str(value)}
        return value
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(f"canonical serialization requires string keys, got {type(key).__name__}")
            encoded[key] = _encode_value(item)
        return encoded
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    raise ValidationError(f"cannot canonically serialize value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if _NDARRAY_KEY in value:
            return decode_array(value)
        if _BYTES_KEY in value:
            return base64.b64decode(value[_BYTES_KEY])
        if _INT_KEY in value:
            return int(value[_INT_KEY])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def canonical_dumps(obj: Any) -> str:
    """Serialize ``obj`` to a canonical JSON string.

    The output is deterministic: keys sorted, compact separators, arrays and
    bytes base64 encoded. Two structurally equal objects always produce the
    same string, so the string can be hashed for on-chain commitments.
    """
    return json.dumps(_encode_value(obj), sort_keys=True, separators=(",", ":"))


def canonical_loads(text: str) -> Any:
    """Deserialize a canonical JSON string produced by :func:`canonical_dumps`."""
    return _decode_value(json.loads(text))
