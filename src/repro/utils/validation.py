"""Small validation helpers used across the library.

These raise :class:`repro.exceptions.ValidationError` with descriptive messages
so failures at module boundaries are easy to diagnose.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def ensure_positive_int(value: object, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def ensure_non_negative_int(value: object, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value


def ensure_probability(value: object, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    try:
        value = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number in [0, 1]") from exc
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``low <= value <= high``."""
    value = float(value)
    if not low <= value <= high:
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def ensure_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that every element of ``array`` is finite."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains non-finite values")
    return array


def ensure_same_shape(a: np.ndarray, b: np.ndarray, name: str) -> None:
    """Validate that two arrays share a shape."""
    if np.shape(a) != np.shape(b):
        raise ValidationError(f"{name}: shapes differ ({np.shape(a)} vs {np.shape(b)})")
