"""Deterministic random-number management.

Reproducibility is a hard requirement: the paper's protocol relies on a shared
permutation seed ``e`` agreed at setup, and our blockchain miners must re-derive
identical pseudo-random choices when re-executing a leader's proposal.  All
randomness therefore flows through seeds derived *deterministically* from string
labels with :func:`derive_seed`, and components keep their own named generators
in an :class:`RngRegistry`.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError

_SEED_MODULUS = 2**63 - 1


def derive_seed(*parts: object) -> int:
    """Derive a 63-bit integer seed deterministically from the given parts.

    Parts are joined by ``"/"`` after ``str`` conversion and hashed with
    SHA-256, so ``derive_seed("setup", 3)`` is stable across processes and
    platforms.  The result is suitable for seeding ``numpy.random.default_rng``.
    """
    if not parts:
        raise ValidationError("derive_seed requires at least one part")
    label = "/".join(str(part) for part in parts)
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


def spawn_rng(*parts: object) -> np.random.Generator:
    """Create a NumPy generator seeded deterministically from ``parts``."""
    return np.random.default_rng(derive_seed(*parts))


class RngRegistry:
    """A registry of named, deterministic random generators.

    Each named stream is independent: requesting ``registry.get("noise")`` twice
    returns the same generator object, while ``registry.fresh("noise")`` returns
    a newly seeded generator for that name (useful when a simulation restarts a
    phase and needs identical draws again).
    """

    def __init__(self, base_seed: int) -> None:
        if not isinstance(base_seed, (int, np.integer)):
            raise ValidationError("base_seed must be an integer")
        self._base_seed = int(base_seed)
        self._generators: dict[str, np.random.Generator] = {}

    @property
    def base_seed(self) -> int:
        """The seed all named streams are derived from."""
        return self._base_seed

    def seed_for(self, name: str) -> int:
        """The derived seed for a named stream."""
        return derive_seed(self._base_seed, name)

    def get(self, name: str) -> np.random.Generator:
        """Return the persistent generator for ``name``, creating it on first use."""
        if name not in self._generators:
            self._generators[name] = np.random.default_rng(self.seed_for(name))
        return self._generators[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a newly seeded generator for ``name`` without touching the persistent one."""
        return np.random.default_rng(self.seed_for(name))

    def names(self) -> Iterator[str]:
        """Iterate over the stream names created so far."""
        return iter(sorted(self._generators))

    def reset(self) -> None:
        """Drop all persistent generators so the next ``get`` re-seeds from scratch."""
        self._generators.clear()
