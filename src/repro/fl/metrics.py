"""Classification metrics used as utility functions and evaluation reports."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _check_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.size == 0:
        raise ValidationError("metrics require at least one sample")
    if y_true.shape != y_pred.shape:
        raise ValidationError(f"label arrays differ in length: {y_true.size} vs {y_pred.size}")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions — the paper's utility function u(.)."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def cross_entropy(y_true: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Mean categorical cross-entropy of predicted class probabilities."""
    y_true = np.asarray(y_true).ravel().astype(int)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2:
        raise ValidationError("probabilities must be a 2-D (n_samples, n_classes) array")
    if probabilities.shape[0] != y_true.size:
        raise ValidationError("probabilities and labels disagree on sample count")
    if np.any(y_true < 0) or np.any(y_true >= probabilities.shape[1]):
        raise ValidationError("labels outside the probability matrix's class range")
    clipped = np.clip(probabilities, eps, 1.0)
    picked = clipped[np.arange(y_true.size), y_true]
    return float(-np.mean(np.log(picked)))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    y_true = y_true.astype(int)
    y_pred = y_pred.astype(int)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for true_label, predicted_label in zip(y_true, y_pred):
        matrix[true_label, predicted_label] += 1
    return matrix


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> float:
    """Macro-averaged F1 score (an alternative utility for the ablations)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    f1_scores = []
    for class_index in range(matrix.shape[0]):
        true_positive = matrix[class_index, class_index]
        false_positive = matrix[:, class_index].sum() - true_positive
        false_negative = matrix[class_index, :].sum() - true_positive
        denominator = 2 * true_positive + false_positive + false_negative
        if denominator == 0:
            # The class never appears in truth or predictions; skip it so an
            # absent class does not drag the macro average to zero.
            continue
        f1_scores.append(2 * true_positive / denominator)
    return float(np.mean(f1_scores)) if f1_scores else 0.0
