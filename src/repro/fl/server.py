"""Centralized training baseline.

Ground-truth Shapley values (Fig. 1) are computed by training one model per
data coalition on the *pooled* data of that coalition, exactly as a trusted
central server would.  :class:`CentralizedTrainer` provides that reference
path; it deliberately shares the model and hyper-parameters with the federated
path so the two are comparable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.model import ModelParameters


class CentralizedTrainer:
    """Trains one logistic-regression model on pooled data."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        epochs: int = 30,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        batch_size: int | None = None,
    ) -> None:
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.batch_size = batch_size

    def train(self, features: np.ndarray, labels: np.ndarray, seed: int = 0) -> ModelParameters:
        """Train from scratch on the given pooled data and return the parameters."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).ravel().astype(int)
        if features.shape[0] == 0:
            raise ValidationError("cannot train on an empty dataset")
        model = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.l2)
        model.fit(
            features,
            labels,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            shuffle_seed=seed,
        )
        return model.parameters

    def train_on_coalition(
        self,
        owner_features: dict[str, np.ndarray],
        owner_labels: dict[str, np.ndarray],
        coalition: tuple[str, ...],
        seed: int = 0,
    ) -> ModelParameters:
        """Train on the pooled data of the owners in ``coalition``.

        Owner data is concatenated in sorted owner order so the result does not
        depend on coalition enumeration order.
        """
        members = sorted(coalition)
        missing = [owner for owner in members if owner not in owner_features]
        if missing:
            raise ValidationError(f"coalition references unknown owners: {missing}")
        if not members:
            raise ValidationError("coalition must contain at least one owner")
        features = np.concatenate([owner_features[owner] for owner in members], axis=0)
        labels = np.concatenate([owner_labels[owner] for owner in members], axis=0)
        return self.train(features, labels, seed=seed)

    def evaluate(self, parameters: ModelParameters, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        """Evaluate trained parameters on a held-out set."""
        model = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.l2)
        model.set_parameters(parameters)
        return model.evaluate(features, labels)
