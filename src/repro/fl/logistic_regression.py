"""Multinomial logistic regression trained with gradient descent.

This is the model family used in the paper's experiments ("logistic regression
with gradient descent in the local train epoch").  The implementation is pure
NumPy: a softmax output layer over a linear map, cross-entropy loss with L2
regularization, full-batch or mini-batch gradient descent, and the
:class:`~repro.fl.model.ModelParameters` container so that weights flow through
the secure-aggregation and Shapley layers unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelShapeError, TrainingError, ValidationError
from repro.fl.metrics import accuracy, cross_entropy
from repro.fl.model import ModelParameters
from repro.fl.optimizer import SgdOptimizer
from repro.utils.rng import spawn_rng


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


class LogisticRegressionModel:
    """Softmax (multinomial) logistic regression.

    Args:
        n_features: input dimensionality.
        n_classes: number of output classes.
        l2: L2 regularization strength applied to the weight matrix (not bias).
        init_scale: standard deviation of the (deterministic) weight init; zero
            initialization is used when ``init_scale == 0``.
        seed: seed for the weight initialization.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        l2: float = 1e-4,
        init_scale: float = 0.0,
        seed: int = 0,
    ) -> None:
        if n_features < 1 or n_classes < 2:
            raise ValidationError("need n_features >= 1 and n_classes >= 2")
        if l2 < 0:
            raise ValidationError("l2 must be non-negative")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.l2 = float(l2)
        if init_scale > 0:
            rng = spawn_rng("logreg-init", seed, n_features, n_classes)
            weights = rng.normal(0.0, init_scale, size=(n_features, n_classes))
        else:
            weights = np.zeros((n_features, n_classes))
        bias = np.zeros(n_classes)
        self._params = ModelParameters.from_mapping({"weights": weights, "bias": bias})

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------

    @property
    def parameters(self) -> ModelParameters:
        """The current parameters (weights and bias)."""
        return self._params

    def set_parameters(self, params: ModelParameters) -> None:
        """Replace the model parameters, checking structural compatibility."""
        expected = self._params.shapes()
        if params.shapes() != expected:
            raise ModelShapeError(f"expected parameter shapes {expected}, got {params.shapes()}")
        self._params = params

    def set_vector(self, vector: np.ndarray) -> None:
        """Replace parameters from a flat vector (the on-chain representation)."""
        self._params = self._params.from_vector(vector)

    def clone(self) -> "LogisticRegressionModel":
        """A structurally identical model with a copy of the current parameters."""
        copy = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.l2)
        copy.set_parameters(self._params)
        return copy

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _validate_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.ndim != 2 or features.shape[1] != self.n_features:
            raise ModelShapeError(
                f"expected features with {self.n_features} columns, got shape {features.shape}"
            )
        return features

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for each row of ``features``."""
        features = self._validate_features(features)
        weights = self._params.get("weights")
        bias = self._params.get("bias")
        return softmax(features @ weights + bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.predict_proba(features), axis=1)

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        """Accuracy and cross-entropy on a labelled set."""
        probabilities = self.predict_proba(features)
        predictions = np.argmax(probabilities, axis=1)
        return {
            "accuracy": accuracy(labels, predictions),
            "loss": cross_entropy(labels, probabilities),
        }

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def gradients(self, features: np.ndarray, labels: np.ndarray) -> ModelParameters:
        """Gradient of the regularized cross-entropy loss at the current parameters."""
        features = self._validate_features(features)
        labels = np.asarray(labels).ravel().astype(int)
        if labels.size != features.shape[0]:
            raise ValidationError("features and labels disagree on sample count")
        if np.any(labels < 0) or np.any(labels >= self.n_classes):
            raise ValidationError("labels outside [0, n_classes)")
        n_samples = features.shape[0]
        probabilities = self.predict_proba(features)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(n_samples), labels] = 1.0
        error = probabilities - one_hot
        weights = self._params.get("weights")
        grad_weights = features.T @ error / n_samples + self.l2 * weights
        grad_bias = error.mean(axis=0)
        return ModelParameters.from_mapping({"weights": grad_weights, "bias": grad_bias})

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 1,
        learning_rate: float = 0.1,
        batch_size: int | None = None,
        optimizer: SgdOptimizer | None = None,
        shuffle_seed: int = 0,
    ) -> dict[str, float]:
        """Train in place with (mini-batch) gradient descent.

        Returns the final training metrics.  Raises :class:`TrainingError` if
        the loss becomes non-finite (diverging learning rate).
        """
        features = self._validate_features(features)
        labels = np.asarray(labels).ravel().astype(int)
        optimizer = optimizer or SgdOptimizer(learning_rate=learning_rate)
        n_samples = features.shape[0]
        rng = spawn_rng("logreg-shuffle", shuffle_seed)
        for epoch in range(int(epochs)):
            if batch_size is None or batch_size >= n_samples:
                batches = [np.arange(n_samples)]
            else:
                order = rng.permutation(n_samples)
                batches = [order[i : i + batch_size] for i in range(0, n_samples, batch_size)]
            for batch in batches:
                grads = self.gradients(features[batch], labels[batch])
                self._params = optimizer.step(self._params, grads)
            if not np.all(np.isfinite(self._params.to_vector())):
                raise TrainingError(f"parameters diverged at epoch {epoch}")
        return self.evaluate(features, labels)
