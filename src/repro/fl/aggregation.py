"""Model aggregation rules.

FedAvg (McMahan et al.) averages client models weighted by their sample counts.
The paper splits the dataset uniformly, so weighted and unweighted averaging
coincide there; both are provided because coalition models in GroupSV are
explicitly *plain* (unweighted) averages of group models (Algorithm 1, line 4).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters


def weighted_average(models: Sequence[ModelParameters], weights: Sequence[float]) -> ModelParameters:
    """Average models with the given non-negative weights (normalized internally)."""
    if not models:
        raise ValidationError("cannot aggregate an empty model list")
    if len(models) != len(weights):
        raise ValidationError("one weight per model is required")
    weights = [float(w) for w in weights]
    if any(w < 0 for w in weights):
        raise ValidationError("aggregation weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise ValidationError("aggregation weights must not all be zero")
    aggregate = models[0].scale(weights[0] / total)
    for model, weight in zip(models[1:], weights[1:]):
        aggregate = aggregate.add(model.scale(weight / total))
    return aggregate


def fedavg(models: Sequence[ModelParameters], sample_counts: Sequence[int] | None = None) -> ModelParameters:
    """FedAvg: sample-count-weighted average (unweighted if counts are omitted)."""
    if sample_counts is None:
        return ModelParameters.mean(models)
    return weighted_average(models, [float(count) for count in sample_counts])
