"""Gradient-descent optimizers for local training."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters


class SgdOptimizer:
    """Plain (full-batch or mini-batch) gradient descent: ``w <- w - lr * g``."""

    def __init__(self, learning_rate: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def step(self, params: ModelParameters, gradients: ModelParameters) -> ModelParameters:
        """Apply one descent step and return the new parameters."""
        return params.subtract(gradients.scale(self.learning_rate))

    def reset(self) -> None:
        """No internal state to reset; provided for interface symmetry."""


class MomentumOptimizer:
    """Gradient descent with classical momentum: ``v <- mu*v + g; w <- w - lr*v``."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValidationError("momentum must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._velocity: ModelParameters | None = None

    def step(self, params: ModelParameters, gradients: ModelParameters) -> ModelParameters:
        """Apply one momentum step and return the new parameters."""
        if self._velocity is None or self._velocity.shapes() != gradients.shapes():
            self._velocity = ModelParameters.zeros_like(gradients)
        self._velocity = self._velocity.scale(self.momentum).add(gradients)
        return params.subtract(self._velocity.scale(self.learning_rate))

    def reset(self) -> None:
        """Clear accumulated velocity (e.g. between federated rounds)."""
        self._velocity = None
