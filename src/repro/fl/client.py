"""Data owners: the FL clients holding local data and producing local updates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.model import ModelParameters
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class LocalUpdate:
    """The result of one local training pass.

    Attributes:
        owner_id: identity of the data owner.
        round_number: federated round the update belongs to.
        parameters: the owner's *post-training* local model (the paper masks and
            aggregates local models, not deltas).
        n_samples: number of local training samples (FedAvg weighting).
        train_metrics: local training metrics for reporting.
    """

    owner_id: str
    round_number: int
    parameters: ModelParameters
    n_samples: int
    train_metrics: dict[str, float]


class DataOwner:
    """A cross-silo data owner: local dataset plus local training logic."""

    def __init__(
        self,
        owner_id: str,
        features: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
        local_epochs: int = 1,
        learning_rate: float = 0.1,
        batch_size: int | None = None,
        l2: float = 1e-4,
    ) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).ravel().astype(int)
        if features.ndim != 2:
            raise ValidationError("features must be a 2-D array")
        if features.shape[0] != labels.size:
            raise ValidationError("features and labels disagree on sample count")
        if features.shape[0] == 0:
            raise ValidationError(f"data owner {owner_id!r} has no samples")
        self.owner_id = owner_id
        self.features = features
        self.labels = labels
        self.n_classes = int(n_classes)
        self.local_epochs = int(local_epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = batch_size
        self.l2 = float(l2)

    @property
    def n_samples(self) -> int:
        """Number of local training samples."""
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Input dimensionality."""
        return int(self.features.shape[1])

    def local_train(self, global_parameters: ModelParameters, round_number: int) -> LocalUpdate:
        """Run local epochs starting from the global model and return the local model."""
        model = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.l2)
        model.set_parameters(global_parameters)
        metrics = model.fit(
            self.features,
            self.labels,
            epochs=self.local_epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            shuffle_seed=derive_seed("local-shuffle", self.owner_id, round_number),
        )
        return LocalUpdate(
            owner_id=self.owner_id,
            round_number=round_number,
            parameters=model.parameters,
            n_samples=self.n_samples,
            train_metrics=metrics,
        )

    def evaluate(self, parameters: ModelParameters) -> dict[str, float]:
        """Evaluate a model on this owner's local data."""
        model = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.l2)
        model.set_parameters(parameters)
        return model.evaluate(self.features, self.labels)
