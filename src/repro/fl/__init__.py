"""Federated-learning substrate: models, optimizers, FedAvg, clients, trainers.

The paper trains a multinomial logistic-regression model with gradient descent
locally and FedAvg globally.  This package provides those pieces plus the
reference *centralized* trainer used to establish ground-truth Shapley values,
and data-partitioning helpers for simulating multiple data owners.
"""

from repro.fl.aggregation import fedavg, weighted_average
from repro.fl.client import DataOwner, LocalUpdate
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.metrics import accuracy, confusion_matrix, cross_entropy, macro_f1
from repro.fl.model import ModelParameters
from repro.fl.optimizer import MomentumOptimizer, SgdOptimizer
from repro.fl.partition import dirichlet_partition, uniform_partition
from repro.fl.server import CentralizedTrainer
from repro.fl.trainer import FederatedTrainer, TrainingConfig

__all__ = [
    "fedavg",
    "weighted_average",
    "DataOwner",
    "LocalUpdate",
    "LogisticRegressionModel",
    "accuracy",
    "confusion_matrix",
    "cross_entropy",
    "macro_f1",
    "ModelParameters",
    "MomentumOptimizer",
    "SgdOptimizer",
    "dirichlet_partition",
    "uniform_partition",
    "CentralizedTrainer",
    "FederatedTrainer",
    "TrainingConfig",
]
