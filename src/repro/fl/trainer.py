"""Plain (serverless-free) federated training loop.

This is the *unmasked* FedAvg reference: clients train locally, the trainer
averages their models, repeats.  The blockchain protocol in
:mod:`repro.core.protocol` produces exactly the same global model (up to
fixed-point quantization), which the integration tests assert — that equality
is the correctness anchor for the secure-aggregation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import RoundError, ValidationError
from repro.fl.aggregation import fedavg
from repro.fl.client import DataOwner, LocalUpdate
from repro.fl.logistic_regression import LogisticRegressionModel
from repro.fl.model import ModelParameters


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters shared by all federated training paths.

    Attributes:
        n_rounds: number of global FedAvg rounds.
        local_epochs: local gradient-descent epochs per round.
        learning_rate: local learning rate.
        l2: L2 regularization strength.
        batch_size: local mini-batch size (None = full batch).
        weight_by_samples: whether FedAvg weights owners by sample count.
    """

    n_rounds: int = 10
    local_epochs: int = 1
    learning_rate: float = 0.1
    l2: float = 1e-4
    batch_size: int | None = None
    weight_by_samples: bool = False

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValidationError("n_rounds must be positive")
        if self.local_epochs < 1:
            raise ValidationError("local_epochs must be positive")
        if self.learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")


@dataclass
class RoundRecord:
    """What happened in one federated round (for reporting and tests)."""

    round_number: int
    global_parameters: ModelParameters
    updates: list[LocalUpdate] = field(default_factory=list)
    eval_metrics: dict[str, float] = field(default_factory=dict)


class FederatedTrainer:
    """Coordinates plain FedAvg over a set of :class:`DataOwner` clients."""

    def __init__(
        self,
        owners: list[DataOwner],
        n_features: int,
        n_classes: int,
        config: TrainingConfig | None = None,
    ) -> None:
        if not owners:
            raise ValidationError("at least one data owner is required")
        owner_ids = [owner.owner_id for owner in owners]
        if len(set(owner_ids)) != len(owner_ids):
            raise ValidationError("owner ids must be unique")
        self.owners = list(owners)
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.config = config or TrainingConfig()
        self.history: list[RoundRecord] = []

    def initial_parameters(self) -> ModelParameters:
        """The zero-initialized global model every path starts from."""
        model = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.config.l2)
        return model.parameters

    def run_round(self, global_parameters: ModelParameters, round_number: int) -> RoundRecord:
        """Run one FedAvg round and return its record."""
        updates = [owner.local_train(global_parameters, round_number) for owner in self.owners]
        if not updates:
            raise RoundError(f"round {round_number} produced no updates")
        models = [update.parameters for update in updates]
        counts = [update.n_samples for update in updates] if self.config.weight_by_samples else None
        new_global = fedavg(models, counts)
        return RoundRecord(round_number=round_number, global_parameters=new_global, updates=updates)

    def train(
        self,
        test_features: np.ndarray | None = None,
        test_labels: np.ndarray | None = None,
    ) -> ModelParameters:
        """Run the configured number of rounds and return the final global model."""
        global_parameters = self.initial_parameters()
        self.history = []
        for round_number in range(self.config.n_rounds):
            record = self.run_round(global_parameters, round_number)
            global_parameters = record.global_parameters
            if test_features is not None and test_labels is not None:
                model = LogisticRegressionModel(self.n_features, self.n_classes, l2=self.config.l2)
                model.set_parameters(global_parameters)
                record.eval_metrics = model.evaluate(test_features, test_labels)
            self.history.append(record)
        return global_parameters
