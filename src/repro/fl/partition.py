"""Dataset partitioning across data owners.

The paper splits the training set uniformly at random into 9 subsets.  We also
provide a Dirichlet label-skew partitioner, the standard way to simulate
non-IID cross-silo data, used by the extension experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.utils.rng import spawn_rng


def uniform_partition(n_samples: int, n_owners: int, seed: int = 0) -> list[np.ndarray]:
    """Split sample indices uniformly at random into ``n_owners`` near-equal parts."""
    if n_owners < 1:
        raise PartitionError("n_owners must be positive")
    if n_samples < n_owners:
        raise PartitionError(f"cannot split {n_samples} samples across {n_owners} owners")
    rng = spawn_rng("uniform-partition", seed, n_samples, n_owners)
    order = rng.permutation(n_samples)
    return [np.sort(part) for part in np.array_split(order, n_owners)]


def dirichlet_partition(
    labels: np.ndarray,
    n_owners: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_samples_per_owner: int = 1,
) -> list[np.ndarray]:
    """Label-skewed partition: per-class proportions drawn from Dirichlet(alpha).

    Small ``alpha`` produces highly heterogeneous owners; large ``alpha``
    approaches the uniform split.  The partition is re-drawn (deterministically,
    by advancing the seed) until every owner holds at least
    ``min_samples_per_owner`` samples, up to a bounded number of attempts.
    """
    labels = np.asarray(labels).ravel().astype(int)
    if n_owners < 1:
        raise PartitionError("n_owners must be positive")
    if alpha <= 0:
        raise PartitionError("alpha must be positive")
    if labels.size < n_owners * min_samples_per_owner:
        raise PartitionError("not enough samples for the requested minimum per owner")
    classes = np.unique(labels)
    for attempt in range(100):
        rng = spawn_rng("dirichlet-partition", seed, alpha, n_owners, attempt)
        owner_indices: list[list[int]] = [[] for _ in range(n_owners)]
        for cls in classes:
            class_indices = np.where(labels == cls)[0]
            rng.shuffle(class_indices)
            proportions = rng.dirichlet([alpha] * n_owners)
            cuts = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
            for owner_id, chunk in enumerate(np.split(class_indices, cuts)):
                owner_indices[owner_id].extend(chunk.tolist())
        if all(len(indices) >= min_samples_per_owner for indices in owner_indices):
            return [np.sort(np.array(indices, dtype=int)) for indices in owner_indices]
    raise PartitionError(
        f"could not draw a Dirichlet({alpha}) partition giving every owner "
        f">= {min_samples_per_owner} samples"
    )
