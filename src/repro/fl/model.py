"""Model parameter containers.

All model parameters flow through :class:`ModelParameters`, a named collection
of float arrays that can be flattened into a single vector (the representation
masked and put on chain) and restored from it.  Arithmetic helpers implement
the linear operations FedAvg and coalition-model averaging need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import ModelShapeError, ValidationError


@dataclass(frozen=True)
class ModelParameters:
    """An ordered, immutable collection of named parameter arrays."""

    arrays: tuple[tuple[str, np.ndarray], ...]

    def __post_init__(self) -> None:
        normalized = []
        seen = set()
        for name, array in self.arrays:
            if not isinstance(name, str) or not name:
                raise ValidationError("parameter names must be non-empty strings")
            if name in seen:
                raise ValidationError(f"duplicate parameter name {name!r}")
            seen.add(name)
            normalized.append((name, np.asarray(array, dtype=np.float64).copy()))
        object.__setattr__(self, "arrays", tuple(normalized))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, np.ndarray]) -> "ModelParameters":
        """Build from a name → array mapping (ordered by insertion)."""
        return cls(arrays=tuple((name, np.asarray(arr)) for name, arr in mapping.items()))

    @classmethod
    def zeros_like(cls, other: "ModelParameters") -> "ModelParameters":
        """Parameters of the same structure as ``other``, filled with zeros."""
        return cls(arrays=tuple((name, np.zeros_like(arr)) for name, arr in other.arrays))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Parameter names in order."""
        return [name for name, _ in self.arrays]

    def get(self, name: str) -> np.ndarray:
        """A copy of the named parameter array."""
        for key, array in self.arrays:
            if key == name:
                return array.copy()
        raise ModelShapeError(f"no parameter named {name!r}")

    def shapes(self) -> dict[str, tuple[int, ...]]:
        """Mapping of parameter name to shape."""
        return {name: tuple(arr.shape) for name, arr in self.arrays}

    @property
    def dimension(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(arr.size for _, arr in self.arrays))

    # ------------------------------------------------------------------
    # Flattening (the on-chain representation)
    # ------------------------------------------------------------------

    def to_vector(self) -> np.ndarray:
        """Flatten all parameters into one float64 vector, in declaration order."""
        if not self.arrays:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([arr.ravel() for _, arr in self.arrays])

    def from_vector(self, vector: np.ndarray) -> "ModelParameters":
        """Rebuild parameters with this object's structure from a flat vector."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.size != self.dimension:
            raise ModelShapeError(
                f"vector has {vector.size} elements, model needs {self.dimension}"
            )
        rebuilt = []
        offset = 0
        for name, arr in self.arrays:
            size = arr.size
            rebuilt.append((name, vector[offset : offset + size].reshape(arr.shape)))
            offset += size
        return ModelParameters(arrays=tuple(rebuilt))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "ModelParameters") -> None:
        if self.shapes() != other.shapes():
            raise ModelShapeError(
                f"incompatible parameter structures: {self.shapes()} vs {other.shapes()}"
            )

    def add(self, other: "ModelParameters") -> "ModelParameters":
        """Element-wise sum."""
        self._check_compatible(other)
        return ModelParameters(
            arrays=tuple(
                (name, arr + other_arr)
                for (name, arr), (_, other_arr) in zip(self.arrays, other.arrays)
            )
        )

    def subtract(self, other: "ModelParameters") -> "ModelParameters":
        """Element-wise difference ``self - other``."""
        self._check_compatible(other)
        return ModelParameters(
            arrays=tuple(
                (name, arr - other_arr)
                for (name, arr), (_, other_arr) in zip(self.arrays, other.arrays)
            )
        )

    def scale(self, factor: float) -> "ModelParameters":
        """Element-wise scaling."""
        return ModelParameters(arrays=tuple((name, arr * float(factor)) for name, arr in self.arrays))

    def norm(self) -> float:
        """L2 norm of the flattened parameter vector."""
        return float(np.linalg.norm(self.to_vector()))

    def allclose(self, other: "ModelParameters", atol: float = 1e-9) -> bool:
        """Whether two parameter sets are numerically equal within ``atol``."""
        self._check_compatible(other)
        return bool(np.allclose(self.to_vector(), other.to_vector(), atol=atol))

    @staticmethod
    def mean(items: Iterable["ModelParameters"]) -> "ModelParameters":
        """Unweighted average of several parameter sets (plain coalition aggregation)."""
        items = list(items)
        if not items:
            raise ValidationError("cannot average an empty collection of parameters")
        total = items[0]
        for other in items[1:]:
            total = total.add(other)
        return total.scale(1.0 / len(items))
