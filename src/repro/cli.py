"""Command-line interface for the reproduction.

Provides runnable entry points for the common workflows so the system can be
exercised without writing Python:

* ``python -m repro run`` — run the full blockchain FL + GroupSV protocol
  through the staged round pipeline (optionally under a ``--scenario``:
  dropout, straggler, adversarial group claim, late join, adversary window,
  on-chain join/leave/churn, or a leader dropout forcing consensus view
  changes) and print contributions, rewards, and the audit verdict;
* ``python -m repro sweep-groups`` — the privacy/resolution/cost sweep over m;
* ``python -m repro ground-truth`` — native SV over retrained data coalitions
  (the Fig. 1 computation) for one σ; ``--workers N`` retrains coalitions on
  a process pool;
* ``python -m repro prove`` — run the deterministic protocol on a Merkle-rooted
  chain (``state_root_version=2``) and write a self-contained inclusion-proof
  file for one published state entry (a contribution record, a settlement);
* ``python -m repro verify-proof`` — check such a proof file against a block
  header's state root, with nothing but the header;
* ``python -m repro resume`` — reopen a persisted run (``--store sqlite:PATH``,
  e.g. one stopped with ``run --stop-after``) and continue it to completion;
* ``python -m repro audit`` — re-run the transparency audit over a persisted
  chain, with nothing but the store and the public validation set
  (``--sv-workers N`` parallelizes the sampled estimator's re-run);
* ``python -m repro prune`` — drop a persisted store's reverse deltas below a
  retention horizon (the chain itself is never pruned);
* ``python -m repro info`` — version and configuration defaults.

All commands are deterministic given ``--seed`` and print plain text (tables
and bar charts) so output can be diffed across runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import __version__
from repro.analysis.reporting import render_bar_chart, render_table
from repro.analysis.tradeoff import sweep_group_counts
from repro.core.audit import audit_chain
from repro.core.config import ProtocolConfig
from repro.core.adversary import AdversaryBehavior
from repro.blockchain.transport import FaultPlan
from repro.core.pipeline import (
    AdversarialSubmissionScenario,
    AdversaryInjectionScenario,
    ChurnScenario,
    ComposedScenario,
    DropoutScenario,
    DuplicateStormScenario,
    EclipseScenario,
    FaultScenario,
    JoinScenario,
    LateJoinScenario,
    LeaderDropoutScenario,
    LeaveScenario,
    LossyGossipScenario,
    PartitionAndHealScenario,
    RoundScheduler,
    Scenario,
    StragglerScenario,
)
from repro.core.protocol import BlockchainFLProtocol
from repro.datasets.loader import make_owner_datasets
from repro.fl.client import DataOwner
from repro.fl.server import CentralizedTrainer
from repro.fl.trainer import FederatedTrainer, TrainingConfig
from repro.shapley.native import native_shapley
from repro.shapley.utility import AccuracyUtility, CachedUtility, CoalitionModelUtility, RetrainUtility


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transparent contribution evaluation for secure federated learning on blockchain",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run the full on-chain protocol")
    run.add_argument("--owners", type=int, default=5, help="number of data owners")
    run.add_argument("--groups", type=int, default=3, help="GroupSV group count m")
    run.add_argument("--rounds", type=int, default=3, help="federated rounds")
    run.add_argument("--sigma", type=float, default=0.1, help="per-rank data-quality noise increment")
    run.add_argument("--samples", type=int, default=1500, help="total dataset size")
    run.add_argument("--local-epochs", type=int, default=5, help="local epochs per round")
    run.add_argument("--learning-rate", type=float, default=2.0, help="local learning rate")
    run.add_argument("--reward-pool", type=float, default=1000.0, help="tokens to distribute at the end")
    run.add_argument("--seed", type=int, default=7, help="master seed")
    run.add_argument("--skip-audit", action="store_true", help="skip the transparency audit")
    run.add_argument(
        "--scenario",
        choices=(
            "none", "dropout", "straggler", "adversarial-claim", "late-join",
            "adversary-window", "join", "leave", "churn", "leader-dropout",
            "partition-heal", "eclipse", "lossy-gossip", "duplicate-storm",
            "cross-device-uniform", "cross-device-linear", "cross-device-quadratic",
            "restart-resume", "prune-then-audit",
        ),
        default="none",
        help="pipeline scenario to run (dropout recovery, straggler delay, "
        "rejected adversarial group claim, orchestration-level late join, "
        "round-windowed adversary injection, on-chain cohort join/leave/churn, "
        "a silent block proposer forcing consensus view changes, a "
        "transport fault family: network partition with heal, eclipsed "
        "victim, seeded message loss, or duplicate storm, a cross-device "
        "simulation at --owners scale under a uniform/linear/quadratic "
        "device-quality distribution, a restart-resume drill proving a "
        "persisted churn run reopens byte-identical, or a prune-then-audit "
        "drill proving pruned retention changes no audit verdict)",
    )
    run.add_argument(
        "--scenario-owner", type=str, default=None,
        help="owner targeted by the scenario (default: the second owner)",
    )
    run.add_argument(
        "--shard-size", type=int, default=None, metavar="K",
        help="shard the aggregation cohort into committees of at most K "
        "members (pins aggregation_topology=sharded on the registry); masks "
        "are pairwise within a committee, so each client derives O(K) masks "
        "instead of O(group)",
    )
    run.add_argument(
        "--sv-estimator", choices=("exact", "sampled"), default=None,
        help="GroupSV assembly: exact 2^m enumeration (the default) or the "
        "stratified+truncated permutation estimator with per-owner confidence "
        "intervals (the default for cross-device scenarios, and the only "
        "feasible choice once committees outnumber the exact engine's cap)",
    )
    run.add_argument(
        "--sv-samples", type=int, default=128,
        help="permutations the sampled estimator draws (rounded up to whole "
        "stratification blocks; ignored under --sv-estimator exact)",
    )
    run.add_argument(
        "--sv-workers", type=int, default=None, metavar="N",
        help="worker processes for the sampled estimator's batched committee "
        "scoring (None/1 = serial).  Strictly off-chain: it is never pinned "
        "on the registry and the receipts are bit-identical at any worker "
        "count; rejected when the effective --sv-estimator is exact",
    )
    run.add_argument(
        "--sv-assembly-version", type=int, choices=(1, 2), default=1,
        help="exact-SV assembly pinned on chain (1 = scalar reference, 2 = vectorized)",
    )
    run.add_argument(
        "--state-root-version", type=int, choices=(1, 2, 3), default=1,
        help="state commitment pinned on chain (1 = historical flat hash, "
        "2 = incremental Merkle root with per-entry inclusion proofs, "
        "3 = Merkle root with adaptive bucketing for six-figure key counts)",
    )
    run.add_argument(
        "--store", type=str, default="memory", metavar="SPEC",
        help="persistence backend for the reference replica: 'memory' (the "
        "default) or 'sqlite:PATH'; strictly off-chain, so chains are "
        "byte-identical with or without it",
    )
    run.add_argument(
        "--stop-after", type=int, default=None, metavar="R",
        help="commit rounds 0..R-1 then shut down cleanly before settlement "
        "(requires a persistent --store); continue with `python -m repro "
        "resume` using the same parameters",
    )
    run.add_argument(
        "--prune-keep", type=int, default=3, metavar="K",
        help="reverse deltas to retain in the prune-then-audit drill "
        "(ignored by other scenarios)",
    )
    run.add_argument(
        "--audit-mode", choices=("replay", "incremental"), default="replay",
        help="transparency audit mode: full genesis re-execution, or the "
        "incremental header-commitment walk over retained state versions",
    )
    run.add_argument(
        "--authority-rotation", action="store_true",
        help="propose round blocks under the epoch-authority schedule (leaders "
        "drawn from the round's cohort, view-change failover, auditable view "
        "numbers); implied by --scenario leader-dropout/partition-heal/eclipse",
    )
    run.add_argument(
        "--transport", choices=("deterministic", "faulty", "async"), default="deterministic",
        help="message delivery layer: deterministic (loss-free, byte-identical "
        "chains — the default), faulty (seeded fault injection; implied by "
        "--fault-plan and the fault scenarios), or async (an asyncio miner "
        "swarm of --peers OS processes gossiping framed messages over Unix "
        "sockets; runs the swarm consensus workload instead of the FL "
        "pipeline and verifies its head against the single-process "
        "deterministic reference)",
    )
    run.add_argument(
        "--peers", type=int, default=8,
        help="swarm size for --transport async (miner processes; ignored by "
        "the other transports)",
    )
    run.add_argument(
        "--swarm-restart", type=int, default=0, metavar="N",
        help="resync drill for --transport async: hard-kill N non-leader "
        "peers before round 1, restart them one round later from their "
        "SQLite stores, and require post-heal convergence",
    )
    run.add_argument(
        "--fault-plan", type=str, default=None, metavar="JSON",
        help="FaultPlan as inline JSON or a path to a JSON file (seed, "
        "drop_probability, duplicate_probability, latency_ticks, "
        "timeout_ticks, partitions, links); implies --transport faulty",
    )
    run.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault-injecting transport's RNG (ignored when "
        "--fault-plan provides its own)",
    )
    run.add_argument(
        "--delivery-report-out", type=str, default=None, metavar="PATH",
        help="write the run's delivery report (per-topic outcomes, per-round "
        "rows, per-node resyncs) to a JSON file",
    )

    sweep = subparsers.add_parser("sweep-groups", help="privacy/resolution trade-off over the group count")
    sweep.add_argument("--owners", type=int, default=9)
    sweep.add_argument("--sigma", type=float, default=0.1)
    sweep.add_argument("--samples", type=int, default=1500)
    sweep.add_argument("--local-epochs", type=int, default=10)
    sweep.add_argument("--seed", type=int, default=7)

    truth = subparsers.add_parser("ground-truth", help="native SV over retrained data coalitions (Fig. 1)")
    truth.add_argument("--owners", type=int, default=6, help="number of owners (cost is 2^n trainings)")
    truth.add_argument("--sigma", type=float, default=0.1)
    truth.add_argument("--samples", type=int, default=1200)
    truth.add_argument("--epochs", type=int, default=30, help="epochs per coalition retraining")
    truth.add_argument("--seed", type=int, default=7)
    truth.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for coalition retraining (1 = serial reference path)",
    )

    prove = subparsers.add_parser(
        "prove",
        help="run the protocol on a Merkle-rooted chain and emit an inclusion proof",
    )
    prove.add_argument("--owners", type=int, default=4, help="number of data owners")
    prove.add_argument("--groups", type=int, default=2, help="GroupSV group count m")
    prove.add_argument("--rounds", type=int, default=2, help="federated rounds")
    prove.add_argument("--sigma", type=float, default=0.1, help="per-rank data-quality noise increment")
    prove.add_argument("--samples", type=int, default=400, help="total dataset size")
    prove.add_argument("--local-epochs", type=int, default=2, help="local epochs per round")
    prove.add_argument("--learning-rate", type=float, default=2.0, help="local learning rate")
    prove.add_argument("--reward-pool", type=float, default=1000.0, help="tokens to distribute at the end")
    prove.add_argument("--seed", type=int, default=7, help="master seed")
    prove.add_argument(
        "--namespace", type=str, default="contribution",
        help="state namespace of the entry to prove (e.g. contribution, reward)",
    )
    prove.add_argument(
        "--key", type=str, default="totals",
        help="state key of the entry to prove (e.g. totals, distribution/final)",
    )
    prove.add_argument(
        "--out", type=str, default="proof.json",
        help="file the self-contained proof payload is written to",
    )

    verify = subparsers.add_parser(
        "verify-proof",
        help="check a proof file against a block header's state root",
    )
    verify.add_argument("--proof", type=str, required=True, help="proof file written by `prove`")
    verify.add_argument(
        "--root", type=str, default=None,
        help="the trusted header's 64-hex state root; defaults to the root "
        "embedded in the proof file (pass the root you obtained from the "
        "chain yourself for an independent check)",
    )

    resume = subparsers.add_parser(
        "resume",
        help="reopen a persisted chain and continue the run to completion",
    )
    resume.add_argument(
        "--store", type=str, required=True, metavar="SPEC",
        help="the persistent store the interrupted run wrote (sqlite:PATH)",
    )
    resume.add_argument("--owners", type=int, default=5, help="number of genesis data owners")
    resume.add_argument("--groups", type=int, default=3, help="GroupSV group count m")
    resume.add_argument("--rounds", type=int, default=3, help="federated rounds")
    resume.add_argument("--sigma", type=float, default=0.1, help="per-rank data-quality noise increment")
    resume.add_argument("--samples", type=int, default=1500, help="total dataset size")
    resume.add_argument("--local-epochs", type=int, default=5, help="local epochs per round")
    resume.add_argument("--learning-rate", type=float, default=2.0, help="local learning rate")
    resume.add_argument("--reward-pool", type=float, default=1000.0, help="tokens to distribute at the end")
    resume.add_argument("--seed", type=int, default=7, help="master seed of the original run")
    resume.add_argument(
        "--scenario", choices=("none", "join", "leave", "churn"), default="none",
        help="the membership scenario the original run was started with — it "
        "regenerates any joiner's dataset and replays the not-yet-committed "
        "membership events",
    )
    resume.add_argument(
        "--scenario-owner", type=str, default=None,
        help="owner targeted by the scenario (default: the second owner)",
    )
    resume.add_argument(
        "--sv-assembly-version", type=int, choices=(1, 2), default=1,
        help="exact-SV assembly the original run pinned on chain",
    )
    resume.add_argument(
        "--state-root-version", type=int, choices=(1, 2, 3), default=1,
        help="state commitment the original run pinned on chain",
    )
    resume.add_argument(
        "--audit-mode", choices=("replay", "incremental"), default="replay",
        help="transparency audit mode for the completed run",
    )
    resume.add_argument("--skip-audit", action="store_true", help="skip the transparency audit")

    audit = subparsers.add_parser(
        "audit",
        help="re-run the transparency audit over a persisted chain",
    )
    audit.add_argument(
        "--store", type=str, required=True, metavar="SPEC",
        help="the persistent store holding the chain to audit (sqlite:PATH)",
    )
    audit.add_argument(
        "--samples", type=int, default=1500,
        help="total dataset size of the original run (the public validation "
        "set is re-derived from --samples and --seed alone)",
    )
    audit.add_argument("--seed", type=int, default=7, help="master seed of the original run")
    audit.add_argument(
        "--audit-mode", choices=("replay", "incremental"), default="replay",
        help="full genesis re-execution, or the incremental header-commitment "
        "walk over retained state versions",
    )
    audit.add_argument(
        "--sv-workers", type=int, default=None, metavar="N",
        help="worker processes for re-running the sampled estimator's batched "
        "committee scoring (None/1 = serial; the verdict is bit-identical at "
        "any count); rejected when the chain pins the exact estimator",
    )

    prune = subparsers.add_parser(
        "prune",
        help="drop a persisted store's reverse deltas below a retention horizon",
    )
    prune.add_argument(
        "--store", type=str, required=True, metavar="SPEC",
        help="the persistent store to prune (sqlite:PATH)",
    )
    prune.add_argument(
        "--keep", type=int, default=3, metavar="K",
        help="number of most recent reverse deltas to retain (>= 1); blocks "
        "and the key-value state are never pruned, so historical reads below "
        "the horizon fall back to snapshot+replay",
    )

    subparsers.add_parser("info", help="print version and default configuration")
    return parser


#: Scenarios that install the fault-injecting transport themselves.
FAULT_SCENARIOS = ("partition-heal", "eclipse", "lossy-gossip", "duplicate-storm")

#: Scenarios that only exist under the epoch-authority schedule.
ROTATION_SCENARIOS = ("leader-dropout", "partition-heal", "eclipse")


def _build_scenario(
    kind: str,
    owner_id: str,
    n_rounds: int,
    joiner_dataset=None,
    fault_plan: FaultPlan | None = None,
    fault_seed: int = 0,
) -> Scenario | None:
    """Construct the pipeline scenario requested on the command line."""
    plan = fault_plan or FaultPlan(seed=fault_seed)
    if kind == "partition-heal":
        return PartitionAndHealScenario(round_number=1, heal_after_attempts=1, plan=plan)
    if kind == "eclipse":
        return EclipseScenario(owner_id, rounds=(max(1, n_rounds - 1),), plan=plan)
    if kind == "lossy-gossip":
        return LossyGossipScenario(drop_probability=0.08, seed=plan.seed)
    if kind == "duplicate-storm":
        return DuplicateStormScenario(duplicate_probability=0.5, seed=plan.seed)
    if kind == "dropout":
        return DropoutScenario(owner_id, round_number=0, offline_ticks=2)
    if kind == "straggler":
        return StragglerScenario(owner_id, delay_ticks=1)
    if kind == "adversarial-claim":
        return AdversarialSubmissionScenario(owner_id)
    if kind == "late-join":
        return LateJoinScenario(owner_id, join_round=1)
    if kind == "adversary-window":
        behavior = AdversaryBehavior(kind="noise", magnitude=3.0, seed=5)
        return AdversaryInjectionScenario(
            {owner_id: behavior}, start_round=max(1, n_rounds - 2), end_round=n_rounds - 1
        )
    if kind == "join":
        return JoinScenario(joiner_dataset, join_round=max(1, min(2, n_rounds - 1)))
    if kind == "leave":
        return LeaveScenario(owner_id, leave_round=n_rounds - 1)
    if kind == "churn":
        return ChurnScenario(
            joins=[(joiner_dataset, max(1, min(2, n_rounds - 1)))],
            leaves=[(owner_id, n_rounds - 1)],
        )
    if kind == "leader-dropout":
        return LeaderDropoutScenario(owner_id)
    return None


def _load_fault_plan(spec: str) -> FaultPlan:
    """Parse ``--fault-plan``: inline JSON first, then a JSON file path."""
    try:
        payload = json.loads(spec)
    except json.JSONDecodeError:
        with open(spec, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    return FaultPlan.from_dict(payload)


def _command_cross_device(args: argparse.Namespace) -> int:
    """Run the cross-device simulation harness for a cross-device-* scenario."""
    from repro.core.crossdevice import CrossDeviceConfig, simulate_cross_device
    from repro.exceptions import ShapleyError, ValidationError

    distribution = args.scenario.removeprefix("cross-device-")
    try:
        config = CrossDeviceConfig(
            n_devices=args.owners,
            shard_size=args.shard_size or 32,
            distribution=distribution,
            sv_estimator=args.sv_estimator or "sampled",
            sv_samples=args.sv_samples,
            sv_workers=args.sv_workers,
            n_rounds=args.rounds,
            seed=args.seed,
        )
        result = simulate_cross_device(config)
    except (ShapleyError, ValidationError) as exc:
        print(f"error: {exc}")
        return 2
    print(f"cross-device simulation ({distribution} quality): "
          f"{config.n_devices} devices, shard size {config.shard_size}, "
          f"{len(result.rounds[0].shards)} committees, {config.n_rounds} round(s)")
    print(f"per-device pairwise masks: {result.max_mask_count} max "
          f"(flat aggregation would need {config.n_devices - 1})")
    rows = []
    for record in result.rounds:
        rows.append([
            record.round_number,
            f"{record.global_utility:.4f}",
            len(record.shards),
            f"{record.seconds_masking:.2f}",
            f"{record.seconds_aggregation:.2f}",
            f"{record.seconds_shapley:.2f}",
        ])
    print(render_table(
        ["round", "global utility", "committees", "mask s", "agg s", "sv s"], rows
    ))
    if result.rounds[0].estimator is not None:
        meta = result.rounds[0].estimator
        print(f"sampled GroupSV: {meta['n_samples']} permutations, seed {meta['seed']}, "
              f"{meta['confidence']:.0%} confidence, {meta['evaluations']} coalition "
              "evaluations in round 0")
    ordered = sorted(result.total_contributions.items(), key=lambda kv: kv[1], reverse=True)
    print("\ntop devices by accumulated contribution:")
    for device, value in ordered[:10]:
        width = result.rounds[-1].user_half_widths.get(device, 0.0)
        bound = f" ± {width:.6f}" if width else ""
        print(f"  {device}: {value:.6f}{bound} (quality {result.quality[device]:.3f})")
    return 0


def _command_swarm(args: argparse.Namespace) -> int:
    """Run the asyncio miner swarm and verify parity with the deterministic reference."""
    from repro.blockchain.swarm import (
        SwarmConfig,
        run_reference_workload,
        run_swarm_workload,
    )

    fault_plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    if fault_plan is None and args.fault_seed:
        fault_plan = FaultPlan(seed=args.fault_seed)
    config = SwarmConfig(
        peers=args.peers,
        rounds=args.rounds,
        seed=args.seed,
        state_root_version=args.state_root_version,
        fault_plan=fault_plan,
    )
    if not 0 <= args.swarm_restart <= config.peers // 3:
        print(f"error: --swarm-restart must be in [0, peers//3]; got {args.swarm_restart}")
        return 2
    kill_schedule = None
    if args.swarm_restart:
        # Kill from the top of the id range: those peers are never scheduled
        # to lead within --rounds, so the committed blocks stay byte-identical
        # to the reference while the drill exercises restart + resync.
        victims = config.peer_ids()[-args.swarm_restart:]
        kill_schedule = {1: victims}
    reference = run_reference_workload(config)
    print(f"reference (deterministic, single process): height {reference['height']}, "
          f"head {reference['head']}")
    result = run_swarm_workload(config, kill_schedule=kill_schedule)
    print(f"swarm ({config.peers} peers over asyncio sockets): height {result['height']}, "
          f"head {result['head']}")
    for entry in result["round_log"]:
        print(f"  round {entry['round']}: leader {entry['leader']}, "
              f"{entry['attempts']} attempt(s)")
    resyncs = {
        peer: report["resyncs"]
        for peer, report in sorted(result["reports"].items())
        if not isinstance(report, Exception) and report.get("resyncs")
    }
    if resyncs:
        print(f"  resyncs: {{{', '.join(f'{p}: {len(r)}' for p, r in resyncs.items())}}}")
    print(f"  audit: replay + version roots clean at height {result['audit']['height']}")
    if result["head"] != reference["head"]:
        print("FAIL: swarm head differs from the deterministic reference")
        return 1
    print("OK: swarm head is byte-identical to the deterministic reference")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.transport == "async":
        return _command_swarm(args)
    if args.scenario.startswith("cross-device-"):
        return _command_cross_device(args)
    if args.sv_workers is not None and args.sv_workers < 1:
        print(f"error: --sv-workers must be at least 1; got {args.sv_workers}")
        return 2
    if args.sv_workers is not None and (args.sv_estimator or "exact") != "sampled":
        # The knob only routes the sampled estimator's batched scoring; under
        # the exact engine it would silently do nothing, so refuse it.
        print("error: --sv-workers needs the sampled estimator "
              "(pass --sv-estimator sampled)")
        return 2
    if args.scenario == "restart-resume":
        return _command_restart_resume(args)
    if args.scenario == "prune-then-audit":
        return _command_prune_then_audit(args)
    if args.stop_after is not None and args.store == "memory":
        print("error: --stop-after needs a persistent --store (sqlite:PATH) to resume from")
        return 2
    if args.stop_after is not None and not 1 <= args.stop_after <= args.rounds:
        print(f"error: --stop-after must be in [1, --rounds]; got {args.stop_after}")
        return 2
    guarded = ("join", "leave", "churn", "adversary-window", "leader-dropout",
               "partition-heal", "eclipse")
    if args.scenario in guarded and args.rounds < 2:
        # Membership changes take effect at a later round boundary, the
        # adversary window opens at round 1, the default leader-dropout
        # target is only scheduled to propose from round 1 on, and the
        # partition/eclipse windows target round 1 — a single-round run would
        # silently degenerate to a plain run while reporting the scenario.
        print(f"error: --scenario {args.scenario} needs at least 2 rounds")
        return 2
    # Churn is exempt: its joiner enters at or before the leave boundary, so
    # the cohort at the leave round is back to --owners, which ProtocolConfig
    # already guarantees is >= --groups.
    if args.scenario == "leave" and args.owners - 1 < args.groups:
        print(f"error: --scenario {args.scenario} would leave fewer than "
              f"--groups {args.groups} owners in the cohort")
        return 2
    # Membership scenarios that add an owner generate one extra dataset shard:
    # the genesis cohort stays at --owners and the extra owner joins mid-run.
    extra = 1 if args.scenario in ("join", "churn") else 0
    dataset, all_owners = make_owner_datasets(
        n_owners=args.owners + extra, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    owners = all_owners[: args.owners]
    joiner_dataset = all_owners[args.owners] if extra else None
    config = ProtocolConfig(
        n_owners=args.owners,
        n_groups=args.groups,
        n_rounds=args.rounds,
        local_epochs=args.local_epochs,
        learning_rate=args.learning_rate,
        reward_pool=args.reward_pool,
        permutation_seed=args.seed,
        aggregation_topology="sharded" if args.shard_size else "flat",
        shard_size=args.shard_size,
        sv_estimator=args.sv_estimator or "exact",
        sv_samples=args.sv_samples,
        sv_workers=args.sv_workers,
        sv_assembly_version=args.sv_assembly_version,
        state_root_version=args.state_root_version,
        authority_rotation=args.authority_rotation or args.scenario in ROTATION_SCENARIOS,
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config,
        store=None if args.store == "memory" else args.store,
    )
    owner_ids = sorted(o.owner_id for o in owners)
    target = args.scenario_owner or owner_ids[min(1, len(owner_ids) - 1)]
    if args.scenario != "none" and target not in owner_ids:
        print(f"error: --scenario-owner {target!r} is not one of the generated owners "
              f"({', '.join(owner_ids)})")
        return 2
    fault_plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
    scenario = _build_scenario(
        args.scenario, target, args.rounds, joiner_dataset,
        fault_plan=fault_plan, fault_seed=args.fault_seed,
    )
    if (args.transport == "faulty" or fault_plan is not None) and args.scenario not in FAULT_SCENARIOS:
        # A generic faulty run: install the plan's transport after setup and
        # assert post-heal convergence + audit at settlement, composing with
        # whatever base scenario was requested.
        faulty = FaultScenario(fault_plan or FaultPlan(seed=args.fault_seed), round_retries=2)
        scenario = faulty if scenario is None else ComposedScenario([scenario, faulty])
    scheduler = RoundScheduler(protocol, scenario)
    if args.stop_after is not None:
        from repro.core.pipeline import SetupStage

        SetupStage().run(protocol, scheduler.scenario)
        global_parameters = protocol._template_parameters
        for round_number in range(args.stop_after):
            round_result = scheduler.run_round(round_number, global_parameters)
            global_parameters = round_result.global_parameters
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        protocol.close()
        print(f"stopped after round {args.stop_after - 1}: chain height {chain.height}, "
              f"head {chain.head.block_hash[:16]}… persisted to {args.store}")
        print("continue with: python -m repro resume --store "
              f"{args.store} (same parameters and seed)")
        return 0
    result = scheduler.run()
    protocol.close()

    print(f"protocol finished: {len(result.rounds)} rounds, {result.chain_height} blocks, "
          f"{result.total_transactions} transactions")
    if scenario is not None:
        if args.scenario == "join":
            print(f"scenario: join — {joiner_dataset.owner_id} enters the cohort on chain")
        elif args.scenario == "leave":
            print(f"scenario: leave — {target} exits the cohort on chain")
        elif args.scenario == "churn":
            print(f"scenario: churn — {joiner_dataset.owner_id} joins, {target} leaves")
        elif args.scenario == "leader-dropout":
            print(f"scenario: leader-dropout — {target} never proposes; "
                  "view changes hand its slots to the next scheduled owner")
        elif args.scenario == "partition-heal":
            print("scenario: partition-heal — the swarm splits in half for round 1's "
                  "first attempt, heals, and the retry commits the identical block")
        elif args.scenario == "eclipse":
            print(f"scenario: eclipse — {target} is cut off from all inbound traffic, "
                  "falls behind, and resyncs from an honest peer after the heal")
        elif args.scenario == "lossy-gossip":
            print("scenario: lossy-gossip — every link drops messages (seeded); "
                  "retries, redelivery, and failover absorb the loss")
        elif args.scenario == "duplicate-storm":
            print("scenario: duplicate-storm — links duplicate messages (seeded); "
                  "dedup keeps the chain byte-identical to a clean run")
        else:
            print(f"scenario: {args.scenario} targeting {target}")
        for ctx in scheduler.contexts:
            if ctx.ticks_waited or ctx.rejections:
                rejected = "; ".join(r.reason for r in ctx.rejections) or "none"
                print(f"  round {ctx.round_number}: waited {ctx.ticks_waited} tick(s), "
                      f"rejections: {rejected}")
    if config.authority_rotation:
        print("\nconsensus authority (epoch schedule):")
        rows = []
        for ctx in scheduler.contexts:
            changed = "; ".join(
                f"view {c['view']} {c['leader']}: {c['reason']}"
                for c in ctx.metadata.get("view_changes", [])
            ) or "-"
            rows.append([
                ctx.round_number,
                ctx.result.consensus.block_hash[:12] if ctx.result else "-",
                ctx.metadata.get("view", "-"),
                changed,
            ])
        print(render_table(["round", "block", "view", "view changes"], rows))

    totals = result.delivery_report.get("totals", {})
    print(f"\ntransport delivery ({protocol.network.transport.name}): "
          f"{totals.get('attempted', 0)} attempted, {totals.get('delivered', 0)} delivered, "
          f"{totals.get('dropped', 0) + totals.get('partitioned', 0)} lost, "
          f"{totals.get('duplicated', 0)} duplicated, {totals.get('timed_out', 0)} timed out, "
          f"{totals.get('retries', 0)} retries")
    if protocol.network.faulty:
        rows = []
        for ctx in scheduler.contexts:
            delta = ctx.metadata.get("delivery", {}).get("totals", {})
            rows.append([
                ctx.round_number,
                ctx.metadata.get("attempt", 0),
                delta.get("attempted", 0),
                delta.get("delivered", 0),
                delta.get("dropped", 0) + delta.get("partitioned", 0),
                delta.get("duplicated", 0),
                delta.get("timed_out", 0),
                delta.get("retries", 0),
                "committed" if ctx.result is not None else "aborted",
            ])
        print(render_table(
            ["round", "attempt", "attempted", "delivered", "lost", "dup",
             "timeout", "retries", "outcome"],
            rows,
        ))
        resyncs = {
            owner: protocol.participants[owner].node.resyncs
            for owner in protocol.owner_ids
            if protocol.participants[owner].node.resyncs
        }
        if resyncs:
            detail = ", ".join(
                f"{owner} ({sum(r['blocks'] for r in records)} block(s) from "
                f"{records[-1]['peer']})"
                for owner, records in sorted(resyncs.items())
            )
            print(f"resynced replicas: {detail}")

    rows = [
        [record.round_number, f"{record.global_utility:.4f}", len(record.groups),
         sum(len(group) for group in record.groups)]
        for record in result.rounds
    ]
    print(render_table(["round", "global utility", "groups", "cohort"], rows))

    if args.delivery_report_out:
        payload = {
            "transport": protocol.network.transport.name,
            "fault_seed": args.fault_seed,
            "fault_plan": _load_fault_plan(args.fault_plan).to_dict() if args.fault_plan else None,
            "scenario": args.scenario,
            "report": result.delivery_report,
            "rounds": [
                {
                    "round": ctx.round_number,
                    "attempt": ctx.metadata.get("attempt", 0),
                    "committed": ctx.result is not None,
                    "delivery": ctx.metadata.get("delivery", {}),
                }
                for ctx in scheduler.contexts
            ],
            "resyncs": {
                owner: protocol.participants[owner].node.resyncs
                for owner in protocol.owner_ids
            },
        }
        with open(args.delivery_report_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"delivery report written to {args.delivery_report_out}")

    if result.epoch_settlements:
        print("\ncohort epochs (per-epoch settlement):")
        rows = [
            [e["epoch"], f"{e['start']}..{e['end'] - 1}", len(e["cohort"]),
             f"{e['sv_mass']:.4f}", f"{e['reward_pool']:.2f}"]
            for e in result.epoch_settlements
        ]
        print(render_table(["epoch", "rounds", "cohort", "SV mass", "pool"], rows))

    print("\naccumulated contributions (GroupSV):")
    ordered = dict(sorted(result.total_contributions.items(), key=lambda kv: kv[1], reverse=True))
    print(render_bar_chart(ordered))

    print("\ntoken rewards:")
    rows = [[owner, f"{result.reward_balances[owner]:.2f}"] for owner in ordered]
    print(render_table(["owner", "reward"], rows))

    if not args.skip_audit:
        chain = protocol.participants[protocol.owner_ids[0]].node.chain
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode=args.audit_mode, sv_workers=args.sv_workers,
        )
        checked = f"rounds checked: {report.rounds_checked}"
        if args.audit_mode == "incremental":
            checked += f", state roots verified: {len(report.state_versions_checked)} blocks"
        if config.authority_rotation:
            checked += f", proposers verified: {report.proposers_checked}"
        print(f"\ntransparency audit ({args.audit_mode}): "
              f"{'PASSED' if report.passed else 'FAILED'} ({checked})")
        if not report.passed:
            for mismatch in report.mismatches:
                print(f"  mismatch: {mismatch}")
            return 1
    return 0


def _chain_fingerprint(protocol) -> list[tuple[int, str, str]]:
    """Every block's identity on the reference replica: height, hash, state root."""
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    return [(b.height, b.block_hash, b.header.state_root) for b in chain.blocks]


def _command_restart_resume(args: argparse.Namespace) -> int:
    """The restart-resume drill: a persisted churn run, interrupted mid-run and
    reopened, must continue to a head byte-identical to an uninterrupted run."""
    import os
    import tempfile

    from repro.core.pipeline import SetupStage

    if args.rounds < 2:
        print("error: --scenario restart-resume needs at least 2 rounds")
        return 2
    root_version = args.state_root_version if args.state_root_version >= 2 else 3
    dataset, all_owners = make_owner_datasets(
        n_owners=args.owners + 1, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    owners, joiner = all_owners[: args.owners], all_owners[args.owners]
    leaver = sorted(o.owner_id for o in owners)[min(1, args.owners - 1)]
    config = ProtocolConfig(
        n_owners=args.owners, n_groups=args.groups, n_rounds=args.rounds,
        local_epochs=args.local_epochs, learning_rate=args.learning_rate,
        reward_pool=args.reward_pool, permutation_seed=args.seed,
        state_root_version=root_version,
    )
    make_scenario = lambda: _build_scenario("churn", leaver, args.rounds, joiner)  # noqa: E731
    stop_after = max(1, args.rounds // 2)

    baseline = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    baseline.run(make_scenario())
    expected = _chain_fingerprint(baseline)

    with tempfile.TemporaryDirectory() as tmp:
        store = args.store if args.store.startswith("sqlite:") else (
            "sqlite:" + os.path.join(tmp, "restart-resume.db")
        )
        interrupted = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
            config, store=store,
        )
        scheduler = RoundScheduler(interrupted, make_scenario())
        SetupStage().run(interrupted, scheduler.scenario)
        global_parameters = interrupted._template_parameters
        for round_number in range(stop_after):
            round_result = scheduler.run_round(round_number, global_parameters)
            global_parameters = round_result.global_parameters
        height_at_stop = interrupted.participants[interrupted.owner_ids[0]].node.chain.height
        interrupted.close()
        del interrupted

        resumed = BlockchainFLProtocol.resume_from(
            store, owners, dataset.test_features, dataset.test_labels,
            dataset.n_classes, config, extra_data=[joiner],
        )
        resumed.resume_run(make_scenario())
        actual = _chain_fingerprint(resumed)
        chain = resumed.participants[resumed.owner_ids[0]].node.chain
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode="incremental",
        )
        resumed.close()

    print(f"restart-resume drill: {args.rounds} churn rounds "
          f"({joiner.owner_id} joins, {leaver} leaves), shutdown at height "
          f"{height_at_stop} after round {stop_after - 1}, reopened from the store")
    identical = actual == expected
    print(f"head after resume:   {actual[-1][1][:16]}… (height {actual[-1][0]})")
    print(f"uninterrupted head:  {expected[-1][1][:16]}… (height {expected[-1][0]})")
    print(f"byte-identical chain: {'PASSED' if identical else 'FAILED'}")
    print(f"transparency audit (incremental): {'PASSED' if report.passed else 'FAILED'} "
          f"(state roots verified: {len(report.state_versions_checked)} blocks)")
    if not identical:
        for (h, got, _), (_, want, _) in zip(actual, expected):
            if got != want:
                print(f"  first divergence at height {h}: {got[:16]}… != {want[:16]}…")
                break
        return 1
    return 0 if report.passed else 1


def _command_prune_then_audit(args: argparse.Namespace) -> int:
    """The prune-then-audit drill: pruning retained deltas to a horizon must
    not change a single audit verdict — only the audit's cost model."""
    import os
    import tempfile

    if args.rounds < 2:
        print("error: --scenario prune-then-audit needs at least 2 rounds")
        return 2
    root_version = args.state_root_version if args.state_root_version >= 2 else 3
    dataset, all_owners = make_owner_datasets(
        n_owners=args.owners + 1, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    owners, joiner = all_owners[: args.owners], all_owners[args.owners]
    leaver = sorted(o.owner_id for o in owners)[min(1, args.owners - 1)]
    config = ProtocolConfig(
        n_owners=args.owners, n_groups=args.groups, n_rounds=args.rounds,
        local_epochs=args.local_epochs, learning_rate=args.learning_rate,
        reward_pool=args.reward_pool, permutation_seed=args.seed,
        state_root_version=root_version,
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = args.store if args.store.startswith("sqlite:") else (
            "sqlite:" + os.path.join(tmp, "prune-then-audit.db")
        )
        protocol = BlockchainFLProtocol(
            owners, dataset.test_features, dataset.test_labels, dataset.n_classes,
            config, store=store,
        )
        protocol.run(_build_scenario("churn", leaver, args.rounds, joiner))
        chain = protocol.participants[protocol.owner_ids[0]].node.chain

        def incremental_audit():
            return audit_chain(
                chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
                mode="incremental",
            )

        before = incremental_audit()
        pruned = chain.prune(keep_last=args.prune_keep)
        after = incremental_audit()
        protocol.close()

    verdicts_match = (
        after.passed == before.passed
        and after.rounds_checked == before.rounds_checked
        and after.epochs_checked == before.epochs_checked
        and after.recomputed_totals == before.recomputed_totals
    )
    # The O(Δ) walk reaches one height below the horizon (unwinding the oldest
    # retained delta verifies the state it lands on); everything lower was
    # covered by snapshot+replay and must be reported as such.
    horizon_visible = (
        before.prune_horizon is None
        and after.prune_horizon == chain.oldest_retained_version()
        and bool(after.replayed_below_horizon)
        and after.replayed_below_horizon == list(range(after.state_versions_checked[-1]))
    )
    print(f"prune-then-audit drill: {args.rounds} churn rounds, height {chain.height}, "
          f"pruned deltas {pruned[0]}..{pruned[-1]} (kept last {args.prune_keep})")
    print(f"unpruned audit: {'PASSED' if before.passed else 'FAILED'} "
          f"(rounds {before.rounds_checked}, full O(Δ) walk)")
    print(f"pruned audit:   {'PASSED' if after.passed else 'FAILED'} "
          f"(rounds {after.rounds_checked}, walk to height "
          f"{after.prune_horizon}, snapshot+replay below)")
    print(f"verdicts unchanged by pruning: {'PASSED' if verdicts_match else 'FAILED'}")
    print(f"horizon reported in AuditReport: {'PASSED' if horizon_visible else 'FAILED'}")
    ok = before.passed and after.passed and verdicts_match and horizon_visible
    return 0 if ok else 1


def _command_resume(args: argparse.Namespace) -> int:
    """Reopen a persisted run and continue it to completion."""
    from repro.exceptions import ProtocolError, StorageError

    extra = 1 if args.scenario in ("join", "churn") else 0
    dataset, all_owners = make_owner_datasets(
        n_owners=args.owners + extra, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    owners = all_owners[: args.owners]
    joiner_dataset = all_owners[args.owners] if extra else None
    config = ProtocolConfig(
        n_owners=args.owners,
        n_groups=args.groups,
        n_rounds=args.rounds,
        local_epochs=args.local_epochs,
        learning_rate=args.learning_rate,
        reward_pool=args.reward_pool,
        permutation_seed=args.seed,
        sv_assembly_version=args.sv_assembly_version,
        state_root_version=args.state_root_version,
    )
    owner_ids = sorted(o.owner_id for o in owners)
    target = args.scenario_owner or owner_ids[min(1, len(owner_ids) - 1)]
    scenario = _build_scenario(args.scenario, target, args.rounds, joiner_dataset)
    try:
        protocol = BlockchainFLProtocol.resume_from(
            args.store, owners, dataset.test_features, dataset.test_labels,
            dataset.n_classes, config,
            extra_data=[joiner_dataset] if joiner_dataset is not None else (),
        )
    except (ProtocolError, StorageError) as exc:
        print(f"error: {exc}")
        return 2
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    done = protocol.completed_rounds()
    print(f"resumed from {args.store}: chain height {chain.height}, "
          f"head {chain.head.block_hash[:16]}…, "
          f"{len(done)} of {args.rounds} round(s) already committed")
    result = protocol.resume_run(scenario)
    protocol.close()

    print(f"protocol finished: {len(result.rounds)} rounds, {result.chain_height} blocks, "
          f"{result.total_transactions} transactions")
    rows = [
        [record.round_number, f"{record.global_utility:.4f}", len(record.groups),
         sum(len(group) for group in record.groups)]
        for record in result.rounds
    ]
    print(render_table(["round", "global utility", "groups", "cohort"], rows))

    print("\naccumulated contributions (GroupSV):")
    ordered = dict(sorted(result.total_contributions.items(), key=lambda kv: kv[1], reverse=True))
    print(render_bar_chart(ordered))

    print("\ntoken rewards:")
    rows = [[owner, f"{result.reward_balances[owner]:.2f}"] for owner in ordered]
    print(render_table(["owner", "reward"], rows))

    if not args.skip_audit:
        report = audit_chain(
            chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
            mode=args.audit_mode,
        )
        checked = f"rounds checked: {report.rounds_checked}"
        if args.audit_mode == "incremental":
            checked += f", state roots verified: {len(report.state_versions_checked)} blocks"
        print(f"\ntransparency audit ({args.audit_mode}): "
              f"{'PASSED' if report.passed else 'FAILED'} ({checked})")
        if not report.passed:
            for mismatch in report.mismatches:
                print(f"  mismatch: {mismatch}")
            return 1
    return 0


def _command_audit(args: argparse.Namespace) -> int:
    """Re-run the transparency audit over a persisted chain.

    The auditor needs nothing but the store and the public validation set —
    which is a pure function of ``--samples`` and ``--seed`` — so this works
    without the original owners' datasets or protocol flags: the chain replica
    is rebuilt straight from the store (the state-commitment version is read
    from the store's metadata) and every verdict is recomputed from chain
    state alone.
    """
    from repro.blockchain.chain import Blockchain
    from repro.blockchain.contracts.base import ContractRuntime
    from repro.blockchain.contracts.contribution import ContributionContract
    from repro.blockchain.contracts.fl_training import FLTrainingContract
    from repro.blockchain.contracts.registry import (
        ParticipantRegistryContract,
        pinned_sv_estimator,
    )
    from repro.blockchain.contracts.reward import RewardContract
    from repro.blockchain.storage import SQLiteBackend, open_backend
    from repro.exceptions import StorageError

    if args.sv_workers is not None and args.sv_workers < 1:
        print(f"error: --sv-workers must be at least 1; got {args.sv_workers}")
        return 2
    dataset, _ = make_owner_datasets(n_samples=args.samples, seed=args.seed)

    def runtime_factory():
        runtime = ContractRuntime()
        runtime.register(ParticipantRegistryContract())
        runtime.register(FLTrainingContract())
        runtime.register(ContributionContract(
            dataset.test_features, dataset.test_labels, dataset.n_classes,
        ))
        runtime.register(RewardContract())
        return runtime

    try:
        backend = open_backend(args.store)
    except StorageError as exc:
        print(f"error: {exc}")
        return 2
    if not isinstance(backend, SQLiteBackend):
        print("error: only persistent stores can be audited standalone (use sqlite:PATH)")
        return 2
    try:
        root_version = backend.stored_state_root_version() or 1
        chain = Blockchain(
            runtime_factory, chain_id="audit", state_root_version=root_version,
        )
        if not chain.attach_storage(backend):
            print(f"error: the store at {args.store} holds no committed chain to audit")
            return 2
    except StorageError as exc:
        print(f"error: {exc}")
        return 2
    finally:
        backend.close()
    # The restore is complete and the audit never commits: detach the closed
    # backend so no code path can touch it again.
    chain.storage = None

    pinned = chain.state.get("registry", "protocol_params") or {}
    estimator_name, _ = pinned_sv_estimator(pinned)
    if args.sv_workers is not None and estimator_name != "sampled":
        print(f"error: --sv-workers only applies to sampled-estimator chains "
              f"(this chain pins {estimator_name!r})")
        return 2
    report = audit_chain(
        chain, dataset.test_features, dataset.test_labels, dataset.n_classes,
        mode=args.audit_mode, sv_workers=args.sv_workers,
    )
    checked = f"rounds checked: {report.rounds_checked}"
    if args.audit_mode == "incremental":
        checked += f", state roots verified: {len(report.state_versions_checked)} blocks"
    print(f"chain at {args.store}: height {chain.height}, "
          f"head {chain.head.block_hash[:16]}…, estimator {estimator_name}")
    print(f"transparency audit ({args.audit_mode}): "
          f"{'PASSED' if report.passed else 'FAILED'} ({checked})")
    if not report.passed:
        for mismatch in report.mismatches:
            print(f"  mismatch: {mismatch}")
        return 1
    return 0


def _command_prune(args: argparse.Namespace) -> int:
    """Prune a persisted store's reverse deltas below a retention horizon."""
    from repro.blockchain.storage import SQLiteBackend, open_backend
    from repro.exceptions import StorageError

    try:
        backend = open_backend(args.store)
    except StorageError as exc:
        print(f"error: {exc}")
        return 2
    if not isinstance(backend, SQLiteBackend):
        print("error: only persistent stores can be pruned (use sqlite:PATH)")
        return 2
    try:
        pruned = backend.prune_to(args.keep)
        head = backend.committed_height()
        oldest = backend.oldest_retained_delta()
    except StorageError as exc:
        print(f"error: {exc}")
        backend.close()
        return 2
    backend.close()
    if pruned:
        print(f"pruned {len(pruned)} reverse delta(s) ({pruned[0]}..{pruned[-1]}) "
              f"from {args.store}")
    else:
        print(f"nothing to prune in {args.store} (horizon already satisfied)")
    print(f"chain head {head}; retained deltas {oldest}..{head} — blocks and state "
          "are intact, historical reads below the horizon fall back to "
          "snapshot+replay")
    return 0


def _command_sweep_groups(args: argparse.Namespace) -> int:
    dataset, owners = make_owner_datasets(
        n_owners=args.owners, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
    clients = [
        DataOwner(o.owner_id, o.features, o.labels, dataset.n_classes,
                  local_epochs=args.local_epochs, learning_rate=2.0)
        for o in owners
    ]
    trainer = FederatedTrainer(
        clients, dataset.n_features, dataset.n_classes,
        TrainingConfig(n_rounds=1, local_epochs=args.local_epochs, learning_rate=2.0),
    )
    record = trainer.run_round(trainer.initial_parameters(), 0)
    local_models = {update.owner_id: update.parameters for update in record.updates}
    ground_truth = native_shapley(sorted(local_models), CoalitionModelUtility(local_models, scorer))
    points = sweep_group_counts(local_models, ground_truth, scorer, permutation_seed=args.seed)

    rows = [
        [p.n_groups, p.min_anonymity, f"{p.resolution:.2f}", f"{p.cosine_to_ground_truth:.4f}",
         f"{p.rank_correlation:.4f}", p.coalition_evaluations, f"{p.runtime_seconds:.3f}"]
        for p in points
    ]
    print(render_table(["m", "min anonymity", "resolution", "cosine", "rank corr", "coalitions", "seconds"], rows))
    return 0


def _command_ground_truth(args: argparse.Namespace) -> int:
    dataset, owners = make_owner_datasets(
        n_owners=args.owners, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    scorer = AccuracyUtility(dataset.test_features, dataset.test_labels, dataset.n_classes)
    trainer = CentralizedTrainer(dataset.n_features, dataset.n_classes, epochs=args.epochs, learning_rate=2.0)
    retrain = RetrainUtility(
        {o.owner_id: o.features for o in owners},
        {o.owner_id: o.labels for o in owners},
        scorer,
        trainer=trainer,
        n_workers=args.workers,
    )
    utility = CachedUtility(retrain)
    values = native_shapley([o.owner_id for o in owners], utility)
    print(f"native SV over {2 ** len(owners)} retrained coalitions "
          f"({utility.evaluations()} distinct trainings, "
          f"{retrain.backend.name} backend x{retrain.backend.n_workers}):")
    print(render_bar_chart(dict(sorted(values.items()))))
    return 0


def _command_prove(args: argparse.Namespace) -> int:
    """Run the deterministic protocol on a v2 chain and write an inclusion proof."""
    from repro.utils.serialization import canonical_dumps

    dataset, owners = make_owner_datasets(
        n_owners=args.owners, sigma=args.sigma, n_samples=args.samples, seed=args.seed
    )
    config = ProtocolConfig(
        n_owners=args.owners,
        n_groups=args.groups,
        n_rounds=args.rounds,
        local_epochs=args.local_epochs,
        learning_rate=args.learning_rate,
        reward_pool=args.reward_pool,
        permutation_seed=args.seed,
        state_root_version=2,
    )
    protocol = BlockchainFLProtocol(
        owners, dataset.test_features, dataset.test_labels, dataset.n_classes, config
    )
    protocol.run()
    chain = protocol.participants[protocol.owner_ids[0]].node.chain
    value = chain.state.get(args.namespace, args.key)
    if value is None:
        print(f"error: no state entry {args.namespace}/{args.key} on the chain")
        available = ", ".join(chain.state.keys(args.namespace)) or "(namespace empty)"
        print(f"keys in {args.namespace!r}: {available}")
        return 2
    proof = chain.state.prove(args.namespace, args.key)
    payload = {
        "proof": proof.to_dict(),
        "value_canonical": canonical_dumps(value),
        "header": {
            "height": chain.height,
            "block_hash": chain.head.block_hash,
            "state_root": chain.head.header.state_root,
        },
        "run": {
            "owners": args.owners, "groups": args.groups, "rounds": args.rounds,
            "sigma": args.sigma, "samples": args.samples,
            "local_epochs": args.local_epochs, "learning_rate": args.learning_rate,
            "reward_pool": args.reward_pool, "seed": args.seed,
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"protocol finished: chain height {chain.height}, "
          f"state root {chain.head.header.state_root[:16]}…")
    print(f"proved {args.namespace}/{args.key} "
          f"({len(proof.bucket_siblings) + len(proof.namespace_siblings) + len(proof.top_siblings)} "
          f"sibling hashes) -> {args.out}")
    print(f"verify with: python -m repro verify-proof --proof {args.out} "
          f"--root {chain.head.header.state_root}")
    return 0


def _command_verify_proof(args: argparse.Namespace) -> int:
    """Check a proof file: the value's leaf must fold up to the trusted state root."""
    from repro.blockchain.state import StateProof, verify_state_proof
    from repro.utils.serialization import canonical_loads

    with open(args.proof, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    proof = StateProof.from_dict(payload["proof"])
    value = canonical_loads(payload["value_canonical"])
    root = args.root or payload.get("header", {}).get("state_root") or proof.root
    source = "--root" if args.root else "proof file header"
    ok = verify_state_proof(root, proof, value=value)
    print(f"entry:  {proof.namespace}/{proof.key}")
    print(f"root:   {root} ({source})")
    print(f"result: {'VERIFIED' if ok else 'FAILED'} — the entry "
          f"{'is' if ok else 'is NOT'} committed by that state root")
    return 0 if ok else 1


def _command_info(_args: argparse.Namespace) -> int:
    defaults = ProtocolConfig()
    print(f"repro {__version__}")
    rows = [[field, getattr(defaults, field)] for field in (
        "n_owners", "n_groups", "n_rounds", "permutation_seed", "local_epochs",
        "learning_rate", "precision_bits", "field_bits", "reward_pool",
        "sv_assembly_version", "state_root_version",
    )]
    print(render_table(["protocol default", "value"], rows))
    return 0


_COMMANDS = {
    "run": _command_run,
    "resume": _command_resume,
    "audit": _command_audit,
    "prune": _command_prune,
    "sweep-groups": _command_sweep_groups,
    "ground-truth": _command_ground_truth,
    "prove": _command_prove,
    "verify-proof": _command_verify_proof,
    "info": _command_info,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
