"""Datasets: a synthetic optdigits substitute, noise injection, and loaders.

The paper evaluates on the UCI *Optical Recognition of Handwritten Digits*
dataset (5620 instances, 64 attributes in [0, 16], 10 classes).  No network
access is available here, so :func:`repro.datasets.digits.load_digits`
deterministically synthesizes a dataset of the same shape and similar class
structure; see DESIGN.md for the substitution rationale.
"""

from repro.datasets.digits import DIGITS_N_CLASSES, DIGITS_N_FEATURES, DIGITS_N_SAMPLES, load_digits
from repro.datasets.loader import Dataset, OwnerDataset, make_owner_datasets, train_test_split
from repro.datasets.noise import apply_quality_gradient, gaussian_noise
from repro.datasets.synthetic import make_blobs, make_classification

__all__ = [
    "DIGITS_N_CLASSES",
    "DIGITS_N_FEATURES",
    "DIGITS_N_SAMPLES",
    "load_digits",
    "Dataset",
    "OwnerDataset",
    "make_owner_datasets",
    "train_test_split",
    "apply_quality_gradient",
    "gaussian_noise",
    "make_blobs",
    "make_classification",
]
