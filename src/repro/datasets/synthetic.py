"""Generic synthetic classification datasets.

These generators back unit tests and the extension experiments that need
datasets of arbitrary size/dimension (e.g. the throughput sweep over model
dimension) where the digits substitute would be overkill.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import spawn_rng


def make_blobs(
    n_samples: int,
    n_features: int,
    n_classes: int,
    class_separation: float = 3.0,
    noise: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs: one isotropic cluster per class.

    Class centers are drawn deterministically on a sphere of radius
    ``class_separation``; samples add isotropic noise of scale ``noise``.
    """
    if n_samples < n_classes:
        raise ValidationError("need at least one sample per class")
    if n_features < 1 or n_classes < 2:
        raise ValidationError("need n_features >= 1 and n_classes >= 2")
    rng = spawn_rng("make-blobs", seed, n_samples, n_features, n_classes)
    directions = rng.normal(size=(n_classes, n_features))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    centers = class_separation * directions / np.maximum(norms, 1e-12)

    per_class = [n_samples // n_classes] * n_classes
    for i in range(n_samples % n_classes):
        per_class[i] += 1
    features = []
    labels = []
    for cls in range(n_classes):
        samples = centers[cls] + rng.normal(0.0, noise, size=(per_class[cls], n_features))
        features.append(samples)
        labels.append(np.full(per_class[cls], cls, dtype=np.int64))
    features = np.concatenate(features, axis=0)
    labels = np.concatenate(labels, axis=0)
    order = rng.permutation(n_samples)
    return features[order], labels[order]


def make_classification(
    n_samples: int,
    n_features: int,
    n_classes: int,
    n_informative: int | None = None,
    noise: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A linear classification task: labels follow a random softmax teacher.

    ``n_informative`` features carry signal; the rest are pure noise.  This
    produces a task where logistic regression is well specified, so accuracy
    differences reflect data quality rather than model mismatch.
    """
    if n_features < 1 or n_classes < 2:
        raise ValidationError("need n_features >= 1 and n_classes >= 2")
    n_informative = n_features if n_informative is None else int(n_informative)
    if not 1 <= n_informative <= n_features:
        raise ValidationError("n_informative must be in [1, n_features]")
    rng = spawn_rng("make-classification", seed, n_samples, n_features, n_classes)
    features = rng.normal(size=(n_samples, n_features))
    teacher = np.zeros((n_features, n_classes))
    teacher[:n_informative] = rng.normal(scale=2.0, size=(n_informative, n_classes))
    logits = features @ teacher + rng.normal(0.0, noise, size=(n_samples, n_classes))
    labels = np.argmax(logits, axis=1).astype(np.int64)
    return features, labels
