"""Dataset containers, train/test splitting, and per-owner dataset assembly.

``make_owner_datasets`` wires the full Section V.A setup together: load the
digits data, split 8:2 into train/test, split the training set uniformly into
``n_owners`` subsets, and degrade owner *i*'s features with ``N(0, (σ·i)²)``
noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.digits import DIGITS_N_CLASSES, load_digits
from repro.datasets.noise import apply_quality_gradient
from repro.exceptions import ValidationError
from repro.fl.partition import uniform_partition
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class Dataset:
    """A labelled dataset split into train and test parts."""

    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray
    n_classes: int

    @property
    def n_features(self) -> int:
        """Input dimensionality."""
        return int(self.train_features.shape[1])

    @property
    def n_train(self) -> int:
        """Number of training samples."""
        return int(self.train_features.shape[0])

    @property
    def n_test(self) -> int:
        """Number of test samples."""
        return int(self.test_features.shape[0])


@dataclass(frozen=True)
class OwnerDataset:
    """One data owner's local training data (possibly quality-degraded)."""

    owner_id: str
    features: np.ndarray
    labels: np.ndarray
    noise_sigma: float

    @property
    def n_samples(self) -> int:
        """Number of local samples."""
        return int(self.features.shape[0])


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/test split; returns (train_X, train_y, test_X, test_y)."""
    features = np.asarray(features)
    labels = np.asarray(labels).ravel()
    if features.shape[0] != labels.size:
        raise ValidationError("features and labels disagree on sample count")
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError("test_fraction must be in (0, 1)")
    n_samples = features.shape[0]
    n_test = max(1, int(round(n_samples * test_fraction)))
    if n_test >= n_samples:
        raise ValidationError("test_fraction leaves no training data")
    rng = spawn_rng("train-test-split", seed, n_samples, test_fraction)
    order = rng.permutation(n_samples)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return features[train_idx], labels[train_idx], features[test_idx], labels[test_idx]


def make_owner_datasets(
    n_owners: int = 9,
    sigma: float = 0.0,
    n_samples: int | None = None,
    test_fraction: float = 0.2,
    seed: int = 0,
    normalized: bool = True,
) -> tuple[Dataset, list[OwnerDataset]]:
    """Build the paper's experimental setup (Section V.A).

    Args:
        n_owners: number of data owners (paper: 9).
        sigma: per-rank Gaussian noise increment σ (owner i receives σ·i noise).
        n_samples: total dataset size (default: the full 5620-sample digits set).
        test_fraction: held-out fraction for the utility function (paper: 0.2).
        seed: master seed controlling every random choice.
        normalized: scale pixel features to [0, 1] (keeps gradient descent well
            conditioned at the paper's learning rates).

    Returns:
        ``(dataset, owners)`` where ``dataset`` carries the global train/test
        split and ``owners`` the per-owner (noised) training subsets, ordered
        ``owner-0`` (clean) through ``owner-{n-1}`` (noisiest).
    """
    if n_owners < 1:
        raise ValidationError("n_owners must be positive")
    features, labels = load_digits(n_samples=n_samples or 5620, seed=seed, normalized=normalized)
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=test_fraction, seed=seed
    )
    dataset = Dataset(
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
        n_classes=DIGITS_N_CLASSES,
    )

    parts = uniform_partition(train_x.shape[0], n_owners, seed=seed)
    width = len(str(max(n_owners - 1, 1)))
    owner_ids = [f"owner-{i:0{width}d}" for i in range(n_owners)]
    owner_features = {owner_ids[i]: train_x[parts[i]] for i in range(n_owners)}
    owner_labels = {owner_ids[i]: train_y[parts[i]] for i in range(n_owners)}

    # Noise is left unclipped: clipping back to the pixel range would partially
    # undo the quality degradation the σ-sweep is meant to induce.
    noisy_features = apply_quality_gradient(owner_features, sigma=sigma, seed=seed, clip_range=None)

    owners = []
    for rank, owner_id in enumerate(owner_ids):
        owners.append(
            OwnerDataset(
                owner_id=owner_id,
                features=noisy_features[owner_id],
                labels=owner_labels[owner_id],
                noise_sigma=sigma * rank,
            )
        )
    return dataset, owners
