"""Data-quality degradation by Gaussian noise.

Section V.A of the paper: "To simulate different data quality of each data
owner, we add Gaussian noise with an increasing sigma, d_i = d_i + N(0, σ·i)".
Owner 0 keeps clean data, owner 1 gets noise of scale σ, owner 2 gets 2σ, etc.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import spawn_rng


def gaussian_noise(features: np.ndarray, sigma: float, seed: int = 0) -> np.ndarray:
    """Return a copy of ``features`` with i.i.d. N(0, sigma²) noise added.

    ``sigma == 0`` returns an unmodified copy (no RNG draw), so the σ = 0 runs
    are bit-identical to the clean data.
    """
    features = np.asarray(features, dtype=np.float64)
    if sigma < 0:
        raise ValidationError("sigma must be non-negative")
    if sigma == 0:
        return features.copy()
    rng = spawn_rng("gaussian-noise", seed, sigma, features.shape)
    return features + rng.normal(0.0, sigma, size=features.shape)


def apply_quality_gradient(
    owner_features: dict[str, np.ndarray],
    sigma: float,
    seed: int = 0,
    clip_range: tuple[float, float] | None = None,
) -> dict[str, np.ndarray]:
    """Degrade each owner's features with noise scale ``sigma * owner_rank``.

    Owners are ranked by sorted owner id: the first owner receives no noise,
    the i-th owner receives ``N(0, (sigma * i)²)`` noise, matching the paper's
    ``d_i = d_i + N(0, σ·i)`` setup so that lower-indexed owners hold better
    quality data.

    Args:
        owner_features: mapping of owner id to feature matrix.
        sigma: the per-rank noise increment σ.
        seed: base seed; every owner gets an independent stream.
        clip_range: optional (low, high) clipping applied after noising, e.g.
            ``(0, 16)`` to stay on the pixel scale.
    """
    if sigma < 0:
        raise ValidationError("sigma must be non-negative")
    degraded = {}
    for rank, owner_id in enumerate(sorted(owner_features)):
        noisy = gaussian_noise(owner_features[owner_id], sigma * rank, seed=seed + rank)
        if clip_range is not None:
            noisy = np.clip(noisy, clip_range[0], clip_range[1])
        degraded[owner_id] = noisy
    return degraded
