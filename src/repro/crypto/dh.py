"""Diffie–Hellman key agreement.

Each data owner generates a private exponent ``a`` and publishes ``g**a mod p``
to the blockchain.  Any pair of owners (A, B) can then derive the shared key
``g**(ab) mod p`` without interaction, which seeds the pairwise masks of the
secure-aggregation protocol (see :mod:`repro.crypto.masking`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.groups import MODP_GROUPS, GroupParameters
from repro.exceptions import KeyExchangeError, ValidationError
from repro.utils.hashing import sha256_bytes
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class DHParameters:
    """Public Diffie–Hellman parameters agreed at the off-chain setup stage."""

    group: GroupParameters

    @classmethod
    def default(cls) -> "DHParameters":
        """The 2048-bit RFC 3526 group — the sensible production default."""
        return cls(group=MODP_GROUPS["modp-2048"])

    @classmethod
    def for_testing(cls, bits: int = 64, seed: object = "test") -> "DHParameters":
        """A small deterministic group for fast tests and simulations."""
        from repro.crypto.groups import generate_safe_prime_group

        return cls(group=generate_safe_prime_group(bits, seed))


@dataclass(frozen=True)
class DHKeyPair:
    """A private/public Diffie–Hellman key pair bound to a set of parameters."""

    params: DHParameters
    private_key: int
    public_key: int = field(default=0)

    def __post_init__(self) -> None:
        prime = self.params.group.prime
        if not 1 < self.private_key < prime - 1:
            raise ValidationError("private key must lie in (1, p - 1)")
        expected_public = self.params.group.power(self.params.group.generator, self.private_key)
        if self.public_key == 0:
            object.__setattr__(self, "public_key", expected_public)
        elif self.public_key != expected_public:
            raise KeyExchangeError("public key does not match private key")

    @classmethod
    def generate(cls, params: DHParameters, owner_id: str, seed: object = 0) -> "DHKeyPair":
        """Deterministically generate a key pair for ``owner_id``.

        Simulation convenience: the private exponent is derived from
        ``(owner_id, seed)`` so the whole protocol run is reproducible.  A real
        deployment would use an OS CSPRNG here; nothing downstream depends on
        how the exponent was chosen.
        """
        private = params.group.element_from_seed("dh-private", owner_id, seed)
        return cls(params=params, private_key=private)


def shared_secret(own: DHKeyPair, other_public_key: int) -> bytes:
    """Derive the pairwise shared secret between ``own`` and another public key.

    The raw group element ``other_pub ** own_priv mod p`` is hashed to 32 bytes
    so it can key the HMAC-DRBG regardless of group size.  Both directions of a
    pair derive the same bytes: ``(g**b)**a == (g**a)**b``.
    """
    prime = own.params.group.prime
    if not 1 < other_public_key < prime:
        raise KeyExchangeError("peer public key is outside the group")
    element = pow(other_public_key, own.private_key, prime)
    if element in (0, 1):
        raise KeyExchangeError("degenerate shared secret; peer key is invalid")
    width = (prime.bit_length() + 7) // 8
    return sha256_bytes(element.to_bytes(width, "big"))


def pair_seed(secret: bytes, round_number: int) -> int:
    """Derive the per-round integer seed PRNG(g^ab, r) used for mask expansion."""
    return derive_seed("pair-mask", secret.hex(), round_number)
