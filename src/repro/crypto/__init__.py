"""Cryptographic substrate for secure aggregation.

This package implements the pieces of Bonawitz et al.'s secure-aggregation
protocol that the paper's framework relies on:

* :mod:`repro.crypto.groups` — multiplicative groups modulo a safe prime
  (RFC 3526 MODP groups plus a deterministic safe-prime generator for tests).
* :mod:`repro.crypto.dh` — Diffie–Hellman key pairs and shared-secret agreement.
* :mod:`repro.crypto.prng` — an HMAC-DRBG style deterministic generator used to
  expand a shared secret and a round number into a mask vector.
* :mod:`repro.crypto.fixed_point` — lossless-enough fixed-point encoding of
  float vectors into integers modulo 2**64 so masks add and cancel exactly.
* :mod:`repro.crypto.masking` — pairwise mask construction, masked updates, and
  aggregation with mask cancellation.
* :mod:`repro.crypto.secret_sharing` — Shamir secret sharing, used by the
  dropout-recovery extension.
"""

from repro.crypto.dh import DHKeyPair, DHParameters, shared_secret
from repro.crypto.dropout import DoubleMaskedUpdate, DropoutRecoveryAggregator, DropoutResilientMasker
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.groups import MODP_GROUPS, GroupParameters, generate_safe_prime_group, is_probable_prime
from repro.crypto.ldp import LdpConfig, LdpMechanism, clip_by_norm, gaussian_sigma
from repro.crypto.masking import MaskedUpdate, PairwiseMasker, SecureAggregator
from repro.crypto.prng import HmacDrbg, expand_mask
from repro.crypto.secret_sharing import ShamirSecretSharing, Share

__all__ = [
    "DHKeyPair",
    "DHParameters",
    "shared_secret",
    "DoubleMaskedUpdate",
    "DropoutRecoveryAggregator",
    "DropoutResilientMasker",
    "FixedPointCodec",
    "MODP_GROUPS",
    "GroupParameters",
    "generate_safe_prime_group",
    "is_probable_prime",
    "LdpConfig",
    "LdpMechanism",
    "clip_by_norm",
    "gaussian_sigma",
    "MaskedUpdate",
    "PairwiseMasker",
    "SecureAggregator",
    "HmacDrbg",
    "expand_mask",
    "ShamirSecretSharing",
    "Share",
]
