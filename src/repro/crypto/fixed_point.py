"""Fixed-point encoding of float vectors for additive masking.

Pairwise masks cancel exactly only if arithmetic happens in a finite ring, so
model updates (float64 vectors) are encoded into integers modulo ``2**field_bits``
before masking.  The codec supports *sums* of up to ``max_summands`` encoded
vectors: the decode step interprets the aggregate in a symmetric range wide
enough to hold the sum without wrap-around ambiguity.

Encoding: ``q = round(x * 2**precision_bits) mod M`` where negative values wrap
to the top of the ring (two's-complement style).
Decoding a sum of ``k`` encodings: values above ``M/2`` are interpreted as
negative, then divided by ``2**precision_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EncodingRangeError, ValidationError


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode/decode float vectors as integers in Z_{2**field_bits}.

    Attributes:
        precision_bits: number of fractional bits; resolution is 2**-precision_bits.
        field_bits: ring size in bits; must be <= 64 so masks fit in uint64.
        max_summands: the largest number of encoded vectors that may be summed
            before decoding; bounds the representable magnitude per value.
    """

    precision_bits: int = 24
    field_bits: int = 64
    max_summands: int = 256

    def __post_init__(self) -> None:
        if not 1 <= self.precision_bits <= 52:
            raise ValidationError("precision_bits must be in [1, 52]")
        if not 16 <= self.field_bits <= 64:
            raise ValidationError("field_bits must be in [16, 64]")
        if self.max_summands < 1:
            raise ValidationError("max_summands must be positive")
        if self.precision_bits >= self.field_bits - 2:
            raise ValidationError("precision_bits must leave integer headroom in the field")

    @property
    def modulus(self) -> int:
        """The ring modulus M = 2**field_bits."""
        return 1 << self.field_bits

    @property
    def scale(self) -> int:
        """The fixed-point scale factor 2**precision_bits."""
        return 1 << self.precision_bits

    @property
    def max_abs_value(self) -> float:
        """Largest |x| a single vector may contain and still sum safely.

        The symmetric decode range is ``(-M/2, M/2)``; dividing by the scale and
        the maximum number of summands gives the per-value bound.
        """
        half_range = self.modulus // 2 - 1
        return half_range / (self.scale * self.max_summands)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode a float array into ring elements (dtype ``object`` ints avoided;
        uint64 is used since field_bits <= 64).

        Raises:
            EncodingRangeError: if any value exceeds :attr:`max_abs_value`.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size and not np.all(np.isfinite(arr)):
            raise EncodingRangeError("cannot encode non-finite values")
        limit = self.max_abs_value
        if arr.size and np.max(np.abs(arr)) > limit:
            raise EncodingRangeError(
                f"value magnitude {np.max(np.abs(arr)):.4g} exceeds fixed-point bound {limit:.4g}"
            )
        scaled = np.rint(arr * self.scale).astype(np.int64)
        return scaled.astype(np.uint64) & np.uint64(self.modulus - 1) if self.field_bits < 64 else scaled.astype(np.uint64)

    def decode_sum(self, encoded_sum: np.ndarray, n_summands: int = 1) -> np.ndarray:
        """Decode an element-wise sum (mod M) of ``n_summands`` encoded vectors.

        Args:
            encoded_sum: uint64 array holding the ring sum.
            n_summands: how many encoded vectors were added; only used for a
                sanity check against :attr:`max_summands`.
        """
        if n_summands < 1:
            raise ValidationError("n_summands must be positive")
        if n_summands > self.max_summands:
            raise EncodingRangeError(
                f"{n_summands} summands exceeds codec capacity {self.max_summands}"
            )
        arr = np.ascontiguousarray(np.asarray(encoded_sum, dtype=np.uint64))
        if self.field_bits < 64:
            arr = arr & np.uint64(self.modulus - 1)
            # Values in the upper half of the ring represent negatives. Work in
            # int64 (exact for field_bits < 64) before converting to float.
            signed_int = arr.astype(np.int64)
            signed_int = np.where(arr >= np.uint64(self.modulus // 2), signed_int - self.modulus, signed_int)
            signed = signed_int.astype(np.float64)
        else:
            # For a full 64-bit field the int64 two's-complement view applies
            # the wrap exactly.
            signed = arr.view(np.int64).astype(np.float64)
        return signed / self.scale

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        """Decode a single encoded vector (no aggregation)."""
        return self.decode_sum(encoded, n_summands=1)

    def sum_encoded(self, stacked: np.ndarray) -> np.ndarray:
        """Ring sum of a ``(k, d)`` stack of encoded/masked vectors in one reduction.

        Because the ring modulus divides 2**64, letting the uint64 sum wrap and
        reducing once at the end is exactly equal to folding :meth:`add` over
        the rows — but it is a single vectorized pass instead of k Python-level
        ring additions.
        """
        stacked = np.asarray(stacked, dtype=np.uint64)
        if stacked.ndim != 2:
            raise ValidationError("sum_encoded expects a (k, d) stack of ring vectors")
        with np.errstate(over="ignore"):
            total = stacked.sum(axis=0, dtype=np.uint64)
        if self.field_bits < 64:
            total = total & np.uint64(self.modulus - 1)
        return total

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Ring addition of two encoded/masked vectors."""
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        with np.errstate(over="ignore"):
            total = a + b
        if self.field_bits < 64:
            total = total & np.uint64(self.modulus - 1)
        return total

    def subtract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Ring subtraction ``a - b`` of two encoded/masked vectors."""
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        with np.errstate(over="ignore"):
            diff = a - b
        if self.field_bits < 64:
            diff = diff & np.uint64(self.modulus - 1)
        return diff
