"""Multiplicative group parameters for Diffie–Hellman key agreement.

The secure-aggregation scheme in the paper is "based on discrete logarithm
cryptography": every user publishes ``g**a mod p`` and derives pairwise
Diffie–Hellman keys.  This module provides the group parameters ``(p, g)``:

* the standard RFC 3526 MODP groups (1536/2048/3072 bit), hard-coded, which a
  production deployment would use, and
* a deterministic safe-prime generator for small parameter sizes so the test
  suite can exercise the full protocol quickly without multi-thousand-bit
  arithmetic dominating runtime.

Primality testing uses deterministic Miller–Rabin bases for 64-bit inputs and
a fixed set of rounds (sufficient for our deterministic generator) above that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CryptoError, ValidationError
from repro.utils.rng import derive_seed

# RFC 3526 groups. The generator is 2 for all of them.
_MODP_1536_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)

_MODP_2048_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"
)

_MODP_3072_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33"
    "A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7"
    "ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864"
    "D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2"
    "08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF"
)


@dataclass(frozen=True)
class GroupParameters:
    """Parameters of a multiplicative group modulo a prime.

    Attributes:
        prime: the modulus ``p`` (a safe prime for the built-in groups).
        generator: the group generator ``g``.
        name: human-readable identifier (e.g. ``"modp-2048"``).
    """

    prime: int
    generator: int
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.prime <= 3:
            raise ValidationError("group prime must exceed 3")
        if not 1 < self.generator < self.prime:
            raise ValidationError("generator must lie strictly between 1 and the prime")

    @property
    def bit_length(self) -> int:
        """Number of bits in the modulus."""
        return self.prime.bit_length()

    def power(self, base: int, exponent: int) -> int:
        """Compute ``base ** exponent mod p``."""
        return pow(base, exponent, self.prime)

    def element_from_seed(self, *parts: object) -> int:
        """Derive a deterministic exponent in ``[2, p - 2]`` from label parts.

        Used to generate private keys reproducibly in simulations; a production
        deployment would draw from an OS CSPRNG instead.
        """
        seed = derive_seed(*parts)
        span = self.prime - 3
        return 2 + (seed % span)


MODP_GROUPS: dict[str, GroupParameters] = {
    "modp-1536": GroupParameters(prime=int(_MODP_1536_HEX, 16), generator=2, name="modp-1536"),
    "modp-2048": GroupParameters(prime=int(_MODP_2048_HEX, 16), generator=2, name="modp-2048"),
    "modp-3072": GroupParameters(prime=int(_MODP_3072_HEX, 16), generator=2, name="modp-3072"),
}

# Deterministic Miller-Rabin witness sets. The first set is provably sufficient
# for all n < 3.3 * 10**24 (covers 64-bit and a bit beyond).
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rounds: int = 16) -> bool:
    """Miller–Rabin primality test.

    Deterministic for n below ~3.3e24 using fixed witnesses; otherwise performs
    ``rounds`` additional pseudo-random rounds derived deterministically from n.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness(a: int) -> bool:
        """Return True if ``a`` proves ``n`` composite."""
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    for a in _SMALL_PRIMES:
        if witness(a):
            return False

    if n >= 3_317_044_064_679_887_385_961_981:
        for i in range(rounds):
            a = 2 + derive_seed("miller-rabin", n, i) % (n - 3)
            if witness(a):
                return False
    return True


def generate_safe_prime_group(bits: int, seed: object = "repro") -> GroupParameters:
    """Deterministically generate a small safe-prime group for tests.

    A safe prime is ``p = 2q + 1`` with ``q`` prime.  The generator returned is
    a quadratic residue (``g = h**2 mod p``) so it generates the order-``q``
    subgroup, which avoids leaking the low bit of exponents.

    Args:
        bits: modulus size in bits (8..512 supported; use RFC groups above that).
        seed: any hashable label; the same label always yields the same group.

    Raises:
        CryptoError: if no safe prime is found in a bounded search window.
    """
    if bits < 8 or bits > 512:
        raise ValidationError("generate_safe_prime_group supports 8..512 bit moduli")
    base = derive_seed("safe-prime", seed, bits)
    # Start the search from a deterministic odd candidate with the top bit set.
    start = (1 << (bits - 1)) | (base % (1 << (bits - 1))) | 1
    candidate = start
    for _ in range(200_000):
        q = candidate
        p = 2 * q + 1
        if p.bit_length() <= bits + 1 and is_probable_prime(q) and is_probable_prime(p):
            # Find a generator of the order-q subgroup.
            for h in range(2, 64):
                g = pow(h, 2, p)
                if g not in (0, 1, p - 1):
                    return GroupParameters(prime=p, generator=g, name=f"safe-{bits}")
        candidate += 2
    raise CryptoError(f"no safe prime found near seed {seed!r} for {bits} bits")
