"""Local differential privacy baselines for FL updates.

Section II.B of the paper contrasts two client-level privacy families: LDP
(add calibrated noise to updates before sending — cheap but hurts utility) and
cryptographic masking (exact aggregates but heavier machinery).  The paper
adopts secure aggregation; this module provides the LDP alternative so the
ablation benchmarks can quantify the utility cost the paper alludes to
("the accumulated noises make the model not very useful").

Two standard mechanisms over clipped updates are provided:

* Gaussian mechanism — (ε, δ)-DP per round;
* Laplace mechanism — ε-DP per round.

Both operate on the flattened update vector with L2 (Gaussian) or L1 (Laplace)
clipping, mirroring DP-FedAvg-style clients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.fl.model import ModelParameters
from repro.utils.rng import spawn_rng


def clip_by_norm(vector: np.ndarray, clip_norm: float, ord: int = 2) -> np.ndarray:
    """Scale ``vector`` down so its L-``ord`` norm is at most ``clip_norm``."""
    if clip_norm <= 0:
        raise ValidationError("clip_norm must be positive")
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector, ord=ord))
    if norm <= clip_norm or norm == 0.0:
        return vector.copy()
    return vector * (clip_norm / norm)


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Noise scale of the analytic Gaussian mechanism (classic sufficient bound).

    sigma >= sensitivity * sqrt(2 ln(1.25/delta)) / epsilon, valid for epsilon <= 1
    and commonly used beyond as a conservative calibration.
    """
    if epsilon <= 0 or not 0 < delta < 1 or sensitivity <= 0:
        raise ValidationError("need epsilon > 0, 0 < delta < 1, sensitivity > 0")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


@dataclass(frozen=True)
class LdpConfig:
    """Per-round LDP parameters shared by all clients.

    Attributes:
        epsilon: per-round privacy budget ε.
        delta: failure probability δ (Gaussian mechanism only).
        clip_norm: clipping bound on the update norm (the sensitivity).
        mechanism: ``"gaussian"`` or ``"laplace"``.
    """

    epsilon: float = 1.0
    delta: float = 1e-5
    clip_norm: float = 1.0
    mechanism: str = "gaussian"

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValidationError("epsilon must be positive")
        if not 0 < self.delta < 1:
            raise ValidationError("delta must be in (0, 1)")
        if self.clip_norm <= 0:
            raise ValidationError("clip_norm must be positive")
        if self.mechanism not in ("gaussian", "laplace"):
            raise ValidationError("mechanism must be 'gaussian' or 'laplace'")

    def noise_scale(self, dimension: int) -> float:
        """The per-coordinate noise scale implied by the configuration."""
        if self.mechanism == "gaussian":
            return gaussian_sigma(self.epsilon, self.delta, self.clip_norm)
        # Laplace: L1 sensitivity of an L2-clipped vector is clip_norm * sqrt(d).
        return self.clip_norm * math.sqrt(dimension) / self.epsilon


class LdpMechanism:
    """Applies clipping + noise to model updates (deterministically seeded)."""

    def __init__(self, config: LdpConfig) -> None:
        self.config = config

    def privatize_vector(self, vector: np.ndarray, owner_id: str, round_number: int) -> np.ndarray:
        """Clip and noise one flattened update vector."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        clipped = clip_by_norm(vector, self.config.clip_norm, ord=2)
        rng = spawn_rng("ldp", owner_id, round_number, self.config.mechanism)
        scale = self.config.noise_scale(vector.size)
        if self.config.mechanism == "gaussian":
            noise = rng.normal(0.0, scale, size=vector.shape)
        else:
            noise = rng.laplace(0.0, scale, size=vector.shape)
        return clipped + noise

    def privatize(self, parameters: ModelParameters, owner_id: str, round_number: int) -> ModelParameters:
        """Clip and noise a :class:`ModelParameters` update."""
        noisy = self.privatize_vector(parameters.to_vector(), owner_id, round_number)
        return parameters.from_vector(noisy)

    def total_epsilon(self, n_rounds: int) -> float:
        """Naive sequential-composition budget across rounds (upper bound)."""
        if n_rounds < 1:
            raise ValidationError("n_rounds must be positive")
        return self.config.epsilon * n_rounds
