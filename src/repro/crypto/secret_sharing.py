"""Shamir secret sharing over a prime field.

The full Bonawitz secure-aggregation protocol secret-shares each user's mask
seed so the aggregate remains recoverable when users drop out mid-round.  The
paper assumes all owners participate in every round (Section III), so dropout
recovery is an *extension* in this reproduction — but we implement the
primitive faithfully: (t, n) Shamir sharing with Lagrange reconstruction over a
Mersenne-prime field large enough to hold 128-bit secrets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SecretSharingError, ValidationError
from repro.utils.rng import derive_seed

# 2**521 - 1 is prime (a Mersenne prime) and comfortably exceeds any secret we
# share (32-byte DRBG keys / DH secret hashes).
_FIELD_PRIME = (1 << 521) - 1


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation of the sharing polynomial at ``x``."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x <= 0:
            raise ValidationError("share x-coordinate must be positive")
        if not 0 <= self.y < _FIELD_PRIME:
            raise ValidationError("share y-coordinate outside the field")


class ShamirSecretSharing:
    """(threshold, n_shares) secret sharing over GF(2**521 - 1)."""

    def __init__(self, threshold: int, n_shares: int) -> None:
        if threshold < 1:
            raise ValidationError("threshold must be at least 1")
        if n_shares < threshold:
            raise ValidationError("n_shares must be >= threshold")
        if n_shares >= _FIELD_PRIME:
            raise ValidationError("too many shares for the field")
        self.threshold = threshold
        self.n_shares = n_shares

    @property
    def prime(self) -> int:
        """The field modulus."""
        return _FIELD_PRIME

    def split(self, secret: int | bytes, seed: object = 0) -> list[Share]:
        """Split ``secret`` into ``n_shares`` shares, any ``threshold`` of which reconstruct it.

        Coefficients are derived deterministically from ``seed`` for simulation
        reproducibility.
        """
        if isinstance(secret, (bytes, bytearray)):
            secret = int.from_bytes(bytes(secret), "big")
        if not 0 <= secret < _FIELD_PRIME:
            raise SecretSharingError("secret does not fit in the sharing field")
        coefficients = [secret]
        for degree in range(1, self.threshold):
            coefficients.append(derive_seed("shamir-coef", seed, degree) % _FIELD_PRIME)
        shares = []
        for x in range(1, self.n_shares + 1):
            y = 0
            for power, coef in enumerate(coefficients):
                y = (y + coef * pow(x, power, _FIELD_PRIME)) % _FIELD_PRIME
            shares.append(Share(x=x, y=y))
        return shares

    def reconstruct(self, shares: list[Share]) -> int:
        """Reconstruct the secret from at least ``threshold`` distinct shares."""
        if len({share.x for share in shares}) < self.threshold:
            raise SecretSharingError(
                f"need at least {self.threshold} distinct shares, got {len(set(s.x for s in shares))}"
            )
        points = list({share.x: share for share in shares}.values())[: self.threshold]
        secret = 0
        for i, share_i in enumerate(points):
            numerator = 1
            denominator = 1
            for j, share_j in enumerate(points):
                if i == j:
                    continue
                numerator = (numerator * (-share_j.x)) % _FIELD_PRIME
                denominator = (denominator * (share_i.x - share_j.x)) % _FIELD_PRIME
            lagrange = numerator * pow(denominator, -1, _FIELD_PRIME)
            secret = (secret + share_i.y * lagrange) % _FIELD_PRIME
        return secret

    def reconstruct_bytes(self, shares: list[Share], length: int = 32) -> bytes:
        """Reconstruct a secret originally provided as bytes of the given length."""
        value = self.reconstruct(shares)
        return value.to_bytes(length, "big")
