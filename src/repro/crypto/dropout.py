"""Dropout-resilient secure aggregation (double masking + Shamir recovery).

The paper assumes every data owner participates in every round (Section III),
so the plain pairwise masking in :mod:`repro.crypto.masking` suffices there.
The full Bonawitz et al. protocol additionally survives *dropouts*: each user
adds a private self-mask ``b_i`` on top of the pairwise masks, and secret-shares
both ``b_i`` and its DH private key among the cohort.  After the collection
phase the aggregator asks the surviving users for

* the self-mask shares of **surviving** users (so their ``b_i`` can be removed), and
* the key shares of **dropped** users (so their pairwise masks can be recomputed
  and cancelled).

This module implements that extension for the simulation: the threat model is
honest-but-curious, and the "server" role is played by the on-chain contract or
any auditor, exactly like the rest of the framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.dh import DHKeyPair, shared_secret
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.prng import HmacDrbg, expand_mask
from repro.crypto.secret_sharing import ShamirSecretSharing, Share
from repro.exceptions import MaskingError, SecretSharingError, ValidationError
from repro.utils.hashing import sha256_bytes
from repro.utils.rng import derive_seed


def _self_mask_seed(owner_id: str, round_number: int, seed: object) -> bytes:
    """The per-round self-mask seed b_i (derived deterministically in simulation)."""
    return sha256_bytes(f"self-mask/{owner_id}/{round_number}/{seed}".encode("utf-8"))


def _expand_self_mask(seed: bytes, length: int, modulus: int) -> np.ndarray:
    """Expand a self-mask seed into a mask vector."""
    drbg = HmacDrbg(seed, personalization=b"self-mask")
    words = drbg.uint64_array(length)
    if modulus == 2**64:
        return words
    return words % np.uint64(modulus)


@dataclass(frozen=True)
class DoubleMaskedUpdate:
    """A masked update carrying the shares needed for dropout recovery.

    Attributes:
        owner_id: submitting owner.
        round_number: FL round.
        payload: encode(w_i) + Σ pairwise masks ± ... + self mask, in the ring.
        self_mask_shares: Shamir shares of the owner's self-mask seed, keyed by
            the recipient owner id (each peer holds one share).
        key_shares: Shamir shares of the owner's DH *private key*, keyed by the
            recipient owner id, used only if this owner later drops out.
    """

    owner_id: str
    round_number: int
    payload: np.ndarray
    self_mask_shares: dict[str, Share] = field(default_factory=dict)
    key_shares: dict[str, Share] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", np.asarray(self.payload, dtype=np.uint64))


class DropoutResilientMasker:
    """Builds double-masked updates and the recovery shares for one owner."""

    def __init__(
        self,
        owner_id: str,
        keypair: DHKeyPair,
        peer_public_keys: dict[str, int],
        threshold: int,
        codec: FixedPointCodec | None = None,
        seed: object = 0,
    ) -> None:
        peers = {k: v for k, v in peer_public_keys.items() if k != owner_id}
        if threshold < 1 or threshold > len(peers) + 1:
            raise ValidationError("threshold must be in [1, cohort size]")
        self.owner_id = owner_id
        self.keypair = keypair
        self.codec = codec or FixedPointCodec()
        self.threshold = threshold
        self.seed = seed
        self._peer_public_keys = dict(peers)
        self._secrets = {peer: shared_secret(keypair, pub) for peer, pub in peers.items()}

    @property
    def peers(self) -> list[str]:
        """Sorted peer ids in the cohort (excluding this owner)."""
        return sorted(self._peer_public_keys)

    def mask(self, weights: np.ndarray, round_number: int) -> DoubleMaskedUpdate:
        """Produce the double-masked update plus the recovery shares.

        The payload is ``encode(w_i) + b_i + Σ_{j>i} m_ij − Σ_{j<i} m_ij`` where
        ``b_i`` is the self mask and ``m_ij`` the pairwise masks.  The self-mask
        seed and the DH private key are Shamir-shared across the cohort with the
        configured threshold.
        """
        weights = np.asarray(weights, dtype=np.float64).ravel()
        encoded = self.codec.encode(weights)
        masked = encoded

        for peer in self.peers:
            pair_mask = expand_mask(self._secrets[peer], round_number, weights.size, self.codec.modulus)
            if peer > self.owner_id:
                masked = self.codec.add(masked, pair_mask)
            else:
                masked = self.codec.subtract(masked, pair_mask)

        self_seed = _self_mask_seed(self.owner_id, round_number, self.seed)
        masked = self.codec.add(masked, _expand_self_mask(self_seed, weights.size, self.codec.modulus))

        cohort = self.peers
        sharing = ShamirSecretSharing(threshold=self.threshold, n_shares=max(len(cohort), self.threshold))
        self_shares = sharing.split(self_seed, seed=derive_seed("share-self", self.owner_id, round_number))
        key_shares = sharing.split(
            self.keypair.private_key, seed=derive_seed("share-key", self.owner_id, round_number)
        )
        return DoubleMaskedUpdate(
            owner_id=self.owner_id,
            round_number=round_number,
            payload=masked,
            self_mask_shares={peer: share for peer, share in zip(cohort, self_shares)},
            key_shares={peer: share for peer, share in zip(cohort, key_shares)},
        )


class DropoutRecoveryAggregator:
    """Aggregates double-masked updates, reconstructing masks of dropped owners.

    The aggregator receives the updates of the *surviving* owners plus, from at
    least ``threshold`` survivors, the shares they hold:

    * self-mask shares of every survivor (to strip the surviving b_i), and
    * key shares of every dropped owner (to recompute its pairwise masks).
    """

    def __init__(self, threshold: int, codec: FixedPointCodec | None = None) -> None:
        if threshold < 1:
            raise ValidationError("threshold must be positive")
        self.threshold = threshold
        self.codec = codec or FixedPointCodec()

    def _reconstruct(self, shares: list[Share], as_bytes: bool) -> int | bytes:
        sharing = ShamirSecretSharing(threshold=self.threshold, n_shares=max(len(shares), self.threshold))
        if as_bytes:
            return sharing.reconstruct_bytes(shares, length=32)
        return sharing.reconstruct(shares)

    def aggregate_sum(
        self,
        surviving_updates: list[DoubleMaskedUpdate],
        all_owner_public_keys: dict[str, int],
        dropped_owner_ids: list[str],
        collected_self_shares: dict[str, list[Share]],
        collected_key_shares: dict[str, list[Share]],
        dh_params,
        round_number: int,
    ) -> np.ndarray:
        """Recover the plain sum of the surviving owners' weight vectors.

        Args:
            surviving_updates: the double-masked updates actually received.
            all_owner_public_keys: public keys of the full cohort (from the registry).
            dropped_owner_ids: owners that registered but did not submit.
            collected_self_shares: per *surviving* owner, >= threshold shares of its self mask.
            collected_key_shares: per *dropped* owner, >= threshold shares of its DH private key.
            dh_params: the cohort's DH parameters.
            round_number: the round being aggregated.
        """
        if not surviving_updates:
            raise MaskingError("no surviving updates to aggregate")
        survivors = sorted(update.owner_id for update in surviving_updates)
        if len(set(survivors)) != len(survivors):
            raise MaskingError("duplicate surviving owner")
        overlap = set(survivors) & set(dropped_owner_ids)
        if overlap:
            raise MaskingError(f"owners cannot both survive and drop: {sorted(overlap)}")
        length = surviving_updates[0].payload.size
        if any(update.payload.size != length for update in surviving_updates):
            raise MaskingError("masked updates have mismatched lengths")

        total = np.zeros(length, dtype=np.uint64)
        for update in surviving_updates:
            total = self.codec.add(total, update.payload)

        # 1. Strip every survivor's self mask b_i.
        for owner in survivors:
            shares = collected_self_shares.get(owner, [])
            try:
                self_seed = self._reconstruct(shares, as_bytes=True)
            except SecretSharingError as exc:
                raise MaskingError(f"cannot reconstruct self mask of survivor {owner}: {exc}") from exc
            total = self.codec.subtract(total, _expand_self_mask(self_seed, length, self.codec.modulus))

        # 2. Cancel the pairwise masks the survivors shared with dropped owners.
        for dropped in sorted(dropped_owner_ids):
            shares = collected_key_shares.get(dropped, [])
            try:
                private_key = self._reconstruct(shares, as_bytes=False)
            except SecretSharingError as exc:
                raise MaskingError(f"cannot reconstruct key of dropped owner {dropped}: {exc}") from exc
            dropped_keypair = DHKeyPair(params=dh_params, private_key=int(private_key))
            if dropped_keypair.public_key != int(all_owner_public_keys[dropped]):
                raise MaskingError(f"reconstructed key of {dropped} does not match its registered public key")
            for survivor in survivors:
                secret = shared_secret(dropped_keypair, int(all_owner_public_keys[survivor]))
                pair_mask = expand_mask(secret, round_number, length, self.codec.modulus)
                # The survivor applied +mask if dropped > survivor (from the
                # survivor's perspective the peer id is larger), else -mask.
                if dropped > survivor:
                    total = self.codec.subtract(total, pair_mask)
                else:
                    total = self.codec.add(total, pair_mask)

        return self.codec.decode_sum(total, n_summands=len(survivors))

    def aggregate_mean(self, *args, **kwargs) -> np.ndarray:
        """Mean of the surviving owners' weights (FedAvg over survivors)."""
        surviving_updates = args[0] if args else kwargs["surviving_updates"]
        summed = self.aggregate_sum(*args, **kwargs)
        return summed / float(len(surviving_updates))
