"""Deterministic shard (committee) assignment for hierarchical secure aggregation.

Cross-silo rounds mask every update against the whole aggregation cohort: each
client derives O(cohort) pairwise masks, which stops scaling long before
cross-device cohort sizes.  Sharding splits each aggregation cohort (a GroupSV
group) into committees of at most ``shard_size`` members.  Masks are pairwise
*within a shard* only — O(shard_size) per client — and because ring addition is
associative and commutative, the sum of the shard sums equals the sum over the
whole group: every shard's masks cancel among its own members, so the decoded
group model is bit-identical to the flat aggregation.

The assignment is a pure function of the round's canonical grouping (itself
derived from the registry's pinned permutation seed) and the pinned
``shard_size``: shards are contiguous, size-balanced slices of each group's
permutation-dealt member order.  Any miner, and any auditor, re-derives the
same shards from chain state alone; the round's block records them so the
audit can check the claim (see :func:`repro.core.audit.audit_chain`).

A shard of one member would submit an unmasked update, so the balanced split
never produces a singleton unless the *group* itself has a single member
(which is already unmasked under the flat topology).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import GroupingError


def shard_count(n_members: int, shard_size: int) -> int:
    """Number of shards a cohort of ``n_members`` splits into."""
    if n_members < 1:
        raise GroupingError("cannot shard an empty cohort")
    if shard_size < 2:
        raise GroupingError("shard_size must be at least 2 (a singleton shard is unmasked)")
    return -(-n_members // shard_size)


def shard_sizes(n_members: int, shard_size: int) -> list[int]:
    """Balanced shard sizes: each ≤ ``shard_size``, any two differ by ≤ 1.

    Balancing (instead of filling shards to ``shard_size`` and leaving a
    remainder shard) is what keeps the minimum shard size at
    ``n_members // shard_count`` — never 1 for ``n_members ≥ 2``.
    """
    n_shards = shard_count(n_members, shard_size)
    base, remainder = divmod(n_members, n_shards)
    return [base + 1 if index < remainder else base for index in range(n_shards)]


def shard_group(members: Sequence[str], shard_size: int) -> list[list[str]]:
    """Split one group's member list into contiguous, size-balanced shards.

    The input order is the canonical permutation-dealt order from
    :func:`repro.shapley.group.make_groups`, so the slicing is deterministic
    in chain state.  Member ids must be unique.
    """
    members = list(members)
    if len(set(members)) != len(members):
        raise GroupingError("member ids must be unique")
    shards: list[list[str]] = []
    cursor = 0
    for size in shard_sizes(len(members), shard_size):
        shards.append(members[cursor : cursor + size])
        cursor += size
    return shards


def shard_cohort(
    groups: Sequence[Sequence[str]], shard_size: int
) -> list[list[list[str]]]:
    """Canonical shard assignment for a whole round: per group, its shards."""
    if not groups:
        raise GroupingError("at least one group is required")
    return [shard_group(group, shard_size) for group in groups]


def shard_membership(
    shards: Sequence[Sequence[Sequence[str]]],
) -> dict[str, tuple[int, int]]:
    """Invert a shard assignment: owner → (group index, shard index)."""
    membership: dict[str, tuple[int, int]] = {}
    for group_index, group_shards in enumerate(shards):
        for shard_index, shard in enumerate(group_shards):
            for owner in shard:
                if owner in membership:
                    raise GroupingError(f"owner {owner!r} appears in more than one shard")
                membership[owner] = (group_index, shard_index)
    return membership
