"""Pairwise masking and secure aggregation (Bonawitz-style).

Per Section IV.A.1 of the paper, each user ``i`` derives, for every other user
``j``, a per-round mask vector ``m_ij = PRNG(g^{a_i a_j}, r)`` and submits

    y_i = encode(w_i) + sum_{j > i} m_ij - sum_{j < i} m_ij   (mod M)

to the blockchain.  Summing all users' submissions cancels every mask and
yields ``encode(sum_i w_i)``, which the chain decodes and divides by the number
of users to obtain the FedAvg aggregate — without ever seeing an individual
``w_i`` in the clear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.dh import DHKeyPair, shared_secret
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.prng import expand_mask
from repro.exceptions import MaskingError, ValidationError


@dataclass(frozen=True)
class MaskedUpdate:
    """A single user's masked model update for one round.

    Attributes:
        owner_id: identifier of the submitting data owner.
        round_number: the FL round this update belongs to.
        payload: uint64 ring elements of the masked, fixed-point encoded update.
        group_id: index of the GroupSV group the owner was assigned to this round.
    """

    owner_id: str
    round_number: int
    payload: np.ndarray
    group_id: int = 0

    def __post_init__(self) -> None:
        payload = np.asarray(self.payload, dtype=np.uint64)
        object.__setattr__(self, "payload", payload)
        if payload.ndim != 1:
            raise ValidationError("masked payload must be a flat vector")


class PairwiseMasker:
    """Builds masked updates for one data owner.

    The masker is initialized with the owner's DH key pair and the public keys
    of every peer *within the same aggregation cohort* (the GroupSV group): the
    paper aggregates one model per group with secure aggregation, so masks are
    pairwise within a group.
    """

    def __init__(
        self,
        owner_id: str,
        keypair: DHKeyPair,
        peer_public_keys: dict[str, int],
        codec: FixedPointCodec | None = None,
    ) -> None:
        if owner_id in peer_public_keys:
            peer_public_keys = {k: v for k, v in peer_public_keys.items() if k != owner_id}
        self.owner_id = owner_id
        self.keypair = keypair
        self.codec = codec or FixedPointCodec()
        self._secrets: dict[str, bytes] = {
            peer: shared_secret(keypair, pub) for peer, pub in peer_public_keys.items()
        }

    @property
    def peers(self) -> list[str]:
        """Sorted peer identifiers this masker shares secrets with."""
        return sorted(self._secrets)

    def _pair_mask(self, peer: str, round_number: int, length: int) -> np.ndarray:
        secret = self._secrets[peer]
        return expand_mask(secret, round_number, length, self.codec.modulus)

    def mask(self, weights: np.ndarray, round_number: int, group_id: int = 0) -> MaskedUpdate:
        """Encode and mask a flat weight vector for submission to the chain.

        Mask orientation follows the canonical ordering of owner ids: the mask
        shared with a lexicographically *larger* peer is added, with a smaller
        peer subtracted.  Both sides of a pair agree on this ordering, so the
        masks cancel in the aggregate.

        All pairwise masks are folded into one *net* signed mask first (ring
        arithmetic is associative and commutative, so the result is identical
        to applying them one by one), leaving a single ring addition on the
        encoded update regardless of cohort size.
        """
        weights = np.asarray(weights, dtype=np.float64).ravel()
        encoded = self.codec.encode(weights)
        peers = self.peers
        if not peers:
            masked = encoded
        else:
            masks = np.stack([self._pair_mask(peer, round_number, weights.size) for peer in peers])
            added = np.array([peer > self.owner_id for peer in peers])
            zero = np.zeros((1, weights.size), dtype=np.uint64)
            plus = self.codec.sum_encoded(masks[added]) if added.any() else zero[0]
            minus = self.codec.sum_encoded(masks[~added]) if (~added).any() else zero[0]
            net_mask = self.codec.subtract(plus, minus)
            masked = self.codec.add(encoded, net_mask)
        return MaskedUpdate(
            owner_id=self.owner_id,
            round_number=round_number,
            payload=masked,
            group_id=group_id,
        )


@dataclass
class SecureAggregator:
    """Aggregates masked updates and recovers the (average of the) plain sum.

    This is the logic the on-chain contract runs: it never needs any secret —
    the pairwise masks cancel by construction once every cohort member's update
    is present.
    """

    codec: FixedPointCodec = field(default_factory=FixedPointCodec)

    def aggregate_sum(self, updates: list[MaskedUpdate]) -> np.ndarray:
        """Return the decoded element-wise *sum* of the participants' weights."""
        if not updates:
            raise MaskingError("cannot aggregate an empty update set")
        rounds = {u.round_number for u in updates}
        if len(rounds) != 1:
            raise MaskingError(f"updates span multiple rounds: {sorted(rounds)}")
        owners = [u.owner_id for u in updates]
        if len(set(owners)) != len(owners):
            raise MaskingError("duplicate owner in update set")
        lengths = {u.payload.size for u in updates}
        if len(lengths) != 1:
            raise MaskingError("masked updates have mismatched lengths")
        lengths.pop()
        # One (k, d) stack and a single modular reduction instead of k
        # sequential ring additions — identical result, one vectorized pass.
        total = self.codec.sum_encoded(np.stack([update.payload for update in updates]))
        return self.codec.decode_sum(total, n_summands=len(updates))

    def aggregate_mean(self, updates: list[MaskedUpdate]) -> np.ndarray:
        """Return the decoded element-wise *mean* — the FedAvg group model."""
        summed = self.aggregate_sum(updates)
        return summed / float(len(updates))
