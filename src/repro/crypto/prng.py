"""Deterministic pseudorandom generation for mask expansion.

The paper writes ``PRNG(g^ab, r) -> m_ab^r``: a pseudorandom number generator
keyed by the pairwise Diffie–Hellman secret and the round number produces the
mask vector.  We implement an HMAC-DRBG-style construction (HMAC-SHA256 in
counter mode) which is deterministic, platform independent, and produces a
uniform stream of 64-bit words that we reduce modulo the masking modulus.
"""

from __future__ import annotations

import hashlib
import hmac

import numpy as np

from repro.exceptions import MaskingError, ValidationError


class HmacDrbg:
    """A minimal HMAC-SHA256 deterministic random bit generator.

    This is *not* a reseedable NIST SP 800-90A implementation; it is a
    deterministic expander: given the same key and personalization string it
    always produces the same byte stream, which is exactly what pairwise mask
    derivation needs.
    """

    _BLOCK = 32  # SHA-256 output size in bytes
    _CHUNK_BLOCKS = 4096  # counter blocks precomputed per generation chunk

    def __init__(self, key: bytes, personalization: bytes = b"") -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValidationError("HmacDrbg key must be non-empty bytes")
        self._key = hmac.new(bytes(key), b"seed" + bytes(personalization), hashlib.sha256).digest()
        # The keyed HMAC context is built once; each block clones it instead of
        # re-running the two-block HMAC key schedule per 32 bytes of output.
        self._context = hmac.new(self._key, digestmod=hashlib.sha256)
        self._counter = 0

    def generate(self, n_bytes: int) -> bytes:
        """Produce the next ``n_bytes`` of the deterministic stream.

        Large requests (full mask vectors) are produced in chunks: the 8-byte
        big-endian counter blocks of a chunk are precomputed with one NumPy
        ``arange`` and the digests are joined in one pass, instead of the
        per-32-byte ``to_bytes``/``bytearray.extend`` loop the scalar
        implementation used.  The byte stream is unchanged.
        """
        if n_bytes < 0:
            raise ValidationError("n_bytes must be non-negative")
        if n_bytes == 0:
            return b""
        n_blocks = -(-n_bytes // self._BLOCK)
        digests: list[bytes] = []
        remaining = n_blocks
        while remaining:
            chunk = min(remaining, self._CHUNK_BLOCKS)
            counters = np.arange(self._counter, self._counter + chunk, dtype=">u8").tobytes()
            for offset in range(0, chunk * 8, 8):
                context = self._context.copy()
                context.update(counters[offset : offset + 8])
                digests.append(context.digest())
            self._counter += chunk
            remaining -= chunk
        return b"".join(digests)[:n_bytes]

    def uint64_array(self, length: int) -> np.ndarray:
        """Produce ``length`` uniform 64-bit unsigned integers."""
        raw = self.generate(length * 8)
        return np.frombuffer(raw, dtype="<u8").copy()


def expand_mask(secret: bytes, round_number: int, length: int, modulus: int) -> np.ndarray:
    """Expand a pairwise secret and round number into a mask vector.

    Args:
        secret: the 32-byte shared secret from :func:`repro.crypto.dh.shared_secret`.
        round_number: the FL round ``r``; each round produces an independent mask.
        length: number of mask elements (the flattened model dimension).
        modulus: masks are uniform in ``[0, modulus)``; must fit in 64 bits.

    Returns:
        A ``uint64`` array of shape ``(length,)``.
    """
    if length < 0:
        raise ValidationError("mask length must be non-negative")
    if round_number < 0:
        raise ValidationError("round_number must be non-negative")
    if not 2 <= modulus <= 2**64:
        raise MaskingError("modulus must be in [2, 2**64]")
    drbg = HmacDrbg(secret, personalization=f"round:{round_number}".encode("ascii"))
    words = drbg.uint64_array(length)
    if modulus == 2**64:
        return words
    # Rejection-free reduction: the bias of a straight modulo is at most
    # 2**64 / modulus in relative terms, negligible for the 2**48+ moduli used
    # here; we document rather than complicate.
    return words % np.uint64(modulus)
